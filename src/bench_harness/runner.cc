#include "bench_harness/runner.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace lstore {
namespace bench {

using Clock = std::chrono::steady_clock;

RunResult RunMixed(Engine& engine, const WorkloadConfig& cfg,
                   uint32_t update_threads, uint32_t scan_threads) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0}, aborted{0}, scans{0};
  std::atomic<uint64_t> scan_ns{0};

  std::vector<std::thread> threads;
  threads.reserve(update_threads + scan_threads);
  for (uint32_t t = 0; t < update_threads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(0x1234 + t * 7919);
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.UpdateTxn(rng, cfg)) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (uint32_t t = 0; t < scan_threads; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto t0 = Clock::now();
        volatile uint64_t sum = engine.ScanSum();
        (void)sum;
        auto t1 = Clock::now();
        scan_ns.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count(),
            std::memory_order_relaxed);
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  auto start = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  auto end = Clock::now();
  double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();

  RunResult res;
  res.committed = committed.load();
  res.aborted = aborted.load();
  res.scans = scans.load();
  res.update_txns_per_sec = res.committed / secs;
  res.read_txns_per_sec = res.scans / secs;
  res.scan_seconds =
      res.scans == 0 ? 0 : (scan_ns.load() * 1e-9) / res.scans;
  return res;
}

double TimeScanUnderUpdates(Engine& engine, const WorkloadConfig& cfg,
                            uint32_t update_threads, uint32_t repeats) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> updaters;
  for (uint32_t t = 0; t < update_threads; ++t) {
    updaters.emplace_back([&, t] {
      Random rng(0x9999 + t * 104729);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)engine.UpdateTxn(rng, cfg);
      }
    });
  }
  // Let updates accumulate before measuring.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(update_threads == 0 ? 0 : cfg.duration_ms));

  double total = 0;
  for (uint32_t i = 0; i < repeats; ++i) {
    auto t0 = Clock::now();
    volatile uint64_t sum = engine.ScanSum();
    (void)sum;
    auto t1 = Clock::now();
    total += std::chrono::duration_cast<std::chrono::duration<double>>(
                 t1 - t0)
                 .count();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : updaters) th.join();
  return total / repeats;
}

double RunPointReads(Engine& engine, const WorkloadConfig& cfg,
                     uint32_t threads, uint32_t reads_per_txn,
                     uint64_t cols_mask) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(0x777 + t * 31337);
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.PointReadTxn(rng, cfg, reads_per_txn, cols_mask)) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  auto start = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : workers) th.join();
  auto end = Clock::now();
  double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  return committed.load() / secs;
}

}  // namespace bench
}  // namespace lstore
