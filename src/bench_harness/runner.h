// Multi-threaded workload driver for the Section 6 experiments.

#ifndef LSTORE_BENCH_HARNESS_RUNNER_H_
#define LSTORE_BENCH_HARNESS_RUNNER_H_

#include <cstdint>

#include "bench_harness/engines.h"
#include "bench_harness/workload.h"

namespace lstore {
namespace bench {

struct RunResult {
  double update_txns_per_sec = 0;
  double read_txns_per_sec = 0;   ///< long read-only txns (scans)
  double scan_seconds = 0;        ///< mean single scan latency
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t scans = 0;
};

/// Run `update_threads` short-update-transaction threads and
/// `scan_threads` long read-only (scan) threads concurrently for
/// cfg.duration_ms. The engine's own merge thread runs throughout
/// ("at least one scan thread and one merge thread", Section 6.1).
RunResult RunMixed(Engine& engine, const WorkloadConfig& cfg,
                   uint32_t update_threads, uint32_t scan_threads);

/// Time a single scan while `update_threads` updaters run.
double TimeScanUnderUpdates(Engine& engine, const WorkloadConfig& cfg,
                            uint32_t update_threads, uint32_t repeats);

/// Throughput of point-read-only transactions (Table 9).
double RunPointReads(Engine& engine, const WorkloadConfig& cfg,
                     uint32_t threads, uint32_t reads_per_txn,
                     uint64_t cols_mask);

}  // namespace bench
}  // namespace lstore

#endif  // LSTORE_BENCH_HARNESS_RUNNER_H_
