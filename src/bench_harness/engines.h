// Uniform engine adapter so the benchmark harness can drive L-Store
// (column and row variants), In-place Update + History, and
// Delta + Blocking Merge through one interface (Section 6.1: "for
// fairness, across all techniques, we have maintained columnar
// storage, a single primary index, and the embedded indirection").

#ifndef LSTORE_BENCH_HARNESS_ENGINES_H_
#define LSTORE_BENCH_HARNESS_ENGINES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/dbm/dbm_table.h"
#include "baselines/iuh/iuh_table.h"
#include "bench_harness/workload.h"
#include "common/random.h"
#include "core/row_table.h"
#include "core/table.h"

namespace lstore {
namespace bench {

enum class EngineKind { kLStore, kLStoreRow, kIuh, kDbm };

std::string EngineName(EngineKind k);

class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const = 0;

  /// Bulk-load keys [0, n) with deterministic column values
  /// (column c of key k = k + c), then settle merges.
  virtual void Load(uint64_t n) = 0;

  /// Execute one short update transaction: `reads` point reads and
  /// `writes` updates on keys drawn from [0, active_set). Returns true
  /// if the transaction committed.
  virtual bool UpdateTxn(Random& rng, const WorkloadConfig& cfg) = 0;

  /// Execute one point-read-only transaction of `reads` lookups, each
  /// projecting `cols_mask`. Returns true on commit.
  virtual bool PointReadTxn(Random& rng, const WorkloadConfig& cfg,
                            uint32_t reads, uint64_t cols_mask) = 0;

  /// Snapshot scan (SUM) over one continuously-updated column of the
  /// whole table (the Section 6.2 scan workload).
  virtual uint64_t ScanSum() = 0;

  /// Parallel fan-out for ScanSum where the engine supports it
  /// (L-Store's Query layer); 0 = auto-size, 1 (default) = serial.
  virtual void SetScanWorkers(uint32_t) {}

  /// A current read timestamp for snapshot scans.
  virtual uint64_t ReadTimestamp() = 0;

  virtual uint64_t num_rows() const = 0;
};

std::unique_ptr<Engine> MakeEngine(EngineKind kind, const WorkloadConfig& cfg);

}  // namespace bench
}  // namespace lstore

#endif  // LSTORE_BENCH_HARNESS_ENGINES_H_
