// L-Store (Row): row-layout variant of the lineage architecture used
// by the layout comparison of Section 6.2 (Tables 8 and 9).
//
// Footnote 18: "our proposed lineage-based storage architecture is not
// limited to any particular data layout". This variant keeps the same
// machinery — base records + append-only tail versions + in-place
// Indirection with a latch bit + MVCC visibility — but stores each
// record contiguously. Every tail version is a *complete* row (the
// natural row-store behaviour), so reads are always at most 1 hop;
// scans pay the strided access that Table 8 quantifies.

#ifndef LSTORE_CORE_ROW_TABLE_H_
#define LSTORE_CORE_ROW_TABLE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/epoch.h"
#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "core/schema.h"
#include "index/primary_index.h"
#include "txn/transaction.h"
#include "txn/transaction_manager.h"
#include "txn/txn.h"

namespace lstore {

class RowTable : public TxnContext {
 public:
  RowTable(Schema schema, TableConfig config,
           TransactionManager* txn_manager = nullptr);
  ~RowTable();

  /// RAII session (same surface as Table): commit via txn.Commit(),
  /// auto-abort on destruction.
  Txn Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);

  /// Non-ticking read snapshot for scans.
  Timestamp Now() const { return txn_manager_->SnapshotNow(); }

  Status Insert(Txn& txn, const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Insert(txn.raw(), row);
  }
  Status Update(Txn& txn, Value key, ColumnMask mask,
                const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Update(txn.raw(), key, mask, row);
  }
  /// Delete: appends a version whose key column is ∅ (the row-layout
  /// delete marker); older snapshots keep seeing the record.
  Status Delete(Txn& txn, Value key) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Delete(txn.raw(), key);
  }
  Status Read(Txn& txn, Value key, ColumnMask mask, std::vector<Value>* out) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Read(txn.raw(), key, mask, out);
  }
  Status SumColumn(ColumnId col, Timestamp as_of, uint64_t* sum) const;

  const Schema& schema() const { return schema_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  uint64_t num_rows() const { return next_row_.load(std::memory_order_acquire); }

 private:
  // Session plumbing (TxnContext) + transaction-pointer cores.
  static Status CheckActive(const Txn& txn) {
    return txn.active() ? Status::OK()
                        : Status::InvalidArgument("transaction finished");
  }
  Status CommitTxn(Transaction* txn) override;
  void AbortTxn(Transaction* txn) override;
  Status Insert(Transaction* txn, const std::vector<Value>& row);
  Status Update(Transaction* txn, Value key, ColumnMask mask,
                const std::vector<Value>& row);
  Status Delete(Transaction* txn, Value key);
  Status Read(Transaction* txn, Value key, ColumnMask mask,
              std::vector<Value>* out);

  // Tail version layout (row-major): [start_time][backptr][c0..cN-1].
  struct RowRange {
    explicit RowRange(uint32_t range_size, uint32_t ncols);
    ~RowRange();

    uint32_t stride;  // ncols + 2
    std::atomic<uint32_t> occupied{0};
    std::atomic<uint32_t> next_seq{0};
    /// Base rows: range_size * ncols atomic values.
    std::unique_ptr<std::atomic<Value>[]> base;
    std::unique_ptr<std::atomic<Value>[]> base_start;
    std::unique_ptr<std::atomic<uint64_t>[]> indirection;
    /// Tail chunks, each holding kChunkRows versions. A fixed
    /// directory of atomically published chunk pointers keeps readers
    /// latch-free; a growable vector would reallocate its backing
    /// array under a concurrent reader. The directory itself is
    /// allocated lazily on the first version (never-updated ranges
    /// pay nothing) and published through `chunks`.
    static constexpr uint32_t kChunkRows = 256;
    static constexpr uint32_t kMaxChunks = 1u << 14;
    mutable SpinLatch grow_latch;
    std::unique_ptr<std::atomic<std::atomic<Value>*>[]> chunk_store;
    std::atomic<std::atomic<std::atomic<Value>*>*> chunks{nullptr};

    std::atomic<Value>* VersionSlot(uint32_t seq, uint32_t field);
    const std::atomic<Value>* VersionSlot(uint32_t seq, uint32_t field) const;
    uint32_t Reserve();  // ensures the chunk exists; returns seq (>=1)
  };

  RowRange* GetRange(uint64_t id) const;
  RowRange* EnsureRange(uint64_t id);

  Status ResolveRow(RowRange& r, uint32_t slot, Timestamp as_of,
                    Transaction* txn, ColumnMask mask,
                    std::vector<Value>* out) const;
  bool VisibleRaw(std::atomic<Value>* sref, Value& raw, Timestamp as_of,
                  Transaction* txn) const;

  Schema schema_;
  TableConfig config_;
  std::unique_ptr<TransactionManager> owned_txn_manager_;
  TransactionManager* txn_manager_;
  mutable EpochManager epochs_;
  PrimaryIndex primary_;

  static constexpr uint64_t kMaxRanges = 1 << 16;
  std::atomic<uint64_t> next_row_{0};
  mutable SpinLatch ranges_latch_;
  std::unique_ptr<std::atomic<RowRange*>[]> ranges_;
  std::atomic<uint64_t> num_ranges_{0};
};

}  // namespace lstore

#endif  // LSTORE_CORE_ROW_TABLE_H_
