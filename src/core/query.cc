#include "core/query.h"

#include <algorithm>
#include <mutex>

#include "common/bitutil.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace lstore {

namespace {

/// Below this many scanned rows a query stays on the calling thread
/// unless the caller asked for workers explicitly: fan-out overhead
/// would dominate.
constexpr uint64_t kMinRowsForParallel = 16384;

}  // namespace

// ---------------------------------------------------------------------------
// Terminals
// ---------------------------------------------------------------------------

Status Query::Sum(ColumnId col, uint64_t* sum, uint64_t* visible_rows) const {
  uint64_t local_sum = 0, local_rows = 0;
  LSTORE_RETURN_IF_ERROR(Execute(col, nullptr, &local_sum, &local_rows));
  *sum = local_sum;
  if (visible_rows != nullptr) *visible_rows = local_rows;
  return Status::OK();
}

Status Query::Min(ColumnId col, Value* out, uint64_t* visible_rows) const {
  Query q(*this);
  q.agg_kind_ = AggKind::kMin;
  uint64_t acc = kNull, rows = 0;
  LSTORE_RETURN_IF_ERROR(q.Execute(col, nullptr, &acc, &rows));
  *out = acc;
  if (visible_rows != nullptr) *visible_rows = rows;
  return Status::OK();
}

Status Query::Max(ColumnId col, Value* out, uint64_t* visible_rows) const {
  Query q(*this);
  q.agg_kind_ = AggKind::kMax;
  uint64_t acc = kNull, rows = 0;
  LSTORE_RETURN_IF_ERROR(q.Execute(col, nullptr, &acc, &rows));
  *out = acc;
  if (visible_rows != nullptr) *visible_rows = rows;
  return Status::OK();
}

Status Query::Count(uint64_t* count) const {
  // Aggregate over the key column (always materialized): the sum is
  // discarded, the row count is the answer.
  Query q(*this);
  q.project_ = 0;
  uint64_t local_sum = 0, local_rows = 0;
  LSTORE_RETURN_IF_ERROR(q.Execute(0, nullptr, &local_sum, &local_rows));
  *count = local_rows;
  return Status::OK();
}

Status Query::Visit(const RowFn& fn) const {
  return Execute(kNoAggregation, &fn, nullptr, nullptr);
}

Status Query::Keys(std::vector<Value>* keys) const {
  keys->clear();
  std::mutex mu;
  Query q(*this);
  q.project_ = 0;  // only the key column is materialized
  RowFn fn = [&](Value key, const std::vector<Value>&) {
    std::lock_guard<std::mutex> g(mu);
    keys->push_back(key);
  };
  LSTORE_RETURN_IF_ERROR(q.Execute(kNoAggregation, &fn, nullptr, nullptr));
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Status Query::Execute(ColumnId agg_col, const RowFn* visit, uint64_t* sum,
                      uint64_t* rows) const {
  const Schema& schema = table_->schema_;
  if (agg_col != kNoAggregation && agg_col >= schema.num_columns()) {
    return Status::InvalidArgument("bad column");
  }
  for (const Filter& f : filters_) {
    if (f.col >= schema.num_columns()) {
      return Status::InvalidArgument("bad filter column");
    }
  }

  ColumnMask needed = 0;
  if (visit != nullptr) needed |= (project_ & schema.AllColumns()) | 1ull;
  if (agg_col != kNoAggregation) needed |= 1ull << agg_col;
  for (const Filter& f : filters_) needed |= 1ull << f.col;

  Timestamp as_of = as_of_ != 0 ? as_of_ : table_->Now();
  if (sum != nullptr) *sum = AggIdentity();
  if (rows != nullptr) *rows = 0;

  uint64_t total = table_->num_rows();
  uint64_t begin = std::min(first_row_, total);
  uint64_t end = row_count_ >= total - begin ? total : begin + row_count_;
  if (begin >= end) return Status::OK();

  // Candidate-driven plan: an equality filter on an indexed column
  // beats a full scan whenever the query spans the whole table.
  if (begin == 0 && end == total) {
    for (const Filter& f : filters_) {
      if (!f.is_equality) continue;
      bool indexed = false;
      {
        SpinGuard sg(table_->secondary_latch_);
        for (const auto& s : table_->secondaries_) {
          if (s.col == f.col) {
            indexed = true;
            break;
          }
        }
      }
      if (indexed) {
        return ExecuteWithIndex(f.col, needed, as_of, agg_col, visit, sum,
                                rows);
      }
    }
  }

  const uint32_t rsz = table_->config_.range_size;
  const uint64_t r_begin = begin / rsz;
  const uint64_t r_end = (end - 1) / rsz + 1;
  const uint64_t nparts = r_end - r_begin;

  auto scan_range = [&](uint64_t range_id, uint64_t* psum, uint64_t* prows) {
    uint64_t range_first = range_id * rsz;
    uint32_t sb = range_first < begin
                      ? static_cast<uint32_t>(begin - range_first)
                      : 0;
    uint32_t se = static_cast<uint32_t>(
        std::min<uint64_t>(rsz, end - range_first));
    ScanPartition(range_id, sb, se, needed, as_of, agg_col, visit, psum,
                  prows);
  };

  // Resolve the worker count WITHOUT touching the shared pool: a
  // serial query (explicit Workers(1), small scan, single partition)
  // must not be the reason the process spawns its pool threads.
  uint32_t workers = workers_;
  if (workers == 0 && end - begin < kMinRowsForParallel) workers = 1;

  if (workers == 1 || nparts == 1) {
    LSTORE_TRACE(table_->obs_.query_partition_ns);
    EpochGuard guard(table_->epochs_);
    uint64_t lsum = AggIdentity(), lrows = 0;
    for (uint64_t rid = r_begin; rid < r_end; ++rid) {
      scan_range(rid, &lsum, &lrows);
    }
    if (sum != nullptr) MergeAccumulator(sum, lsum);
    if (rows != nullptr) *rows += lrows;
    return Status::OK();
  }

  // Fan the update ranges out on the shared pool. Each task owns a
  // contiguous chunk of ranges, accumulates locally, and folds its
  // partial aggregate in under a mutex — identical results to the
  // sequential plan because every partition scans the same snapshot.
  ThreadPool& pool = ThreadPool::Shared();
  if (workers == 0) {
    workers = static_cast<uint32_t>(
        std::min<uint64_t>(pool.num_threads() + 1, nparts));
  }
  uint64_t chunk = std::max<uint64_t>(1, nparts / (uint64_t{workers} * 4));
  uint64_t ntasks = (nparts + chunk - 1) / chunk;
  std::mutex fold_mu;
  pool.ParallelFor(ntasks, workers, [&](uint64_t task) {
    // Per-partition-task latency: the distribution's spread under a
    // concurrent merge is the paper's contention claim, per partition.
    LSTORE_TRACE(table_->obs_.query_partition_ns);
    EpochGuard guard(table_->epochs_);
    uint64_t lsum = AggIdentity(), lrows = 0;
    uint64_t t_begin = r_begin + task * chunk;
    uint64_t t_end = std::min(r_end, t_begin + chunk);
    for (uint64_t rid = t_begin; rid < t_end; ++rid) {
      scan_range(rid, &lsum, &lrows);
    }
    if (sum != nullptr || rows != nullptr) {
      std::lock_guard<std::mutex> g(fold_mu);
      if (sum != nullptr) MergeAccumulator(sum, lsum);
      if (rows != nullptr) *rows += lrows;
    }
  });
  return Status::OK();
}

Status Query::ExecuteWithIndex(ColumnId index_col, ColumnMask needed,
                               Timestamp as_of, ColumnId agg_col,
                               const RowFn* visit, uint64_t* sum,
                               uint64_t* rows) const {
  Value equals = 0;
  for (const Filter& f : filters_) {
    if (f.is_equality && f.col == index_col) {
      equals = f.equals;
      break;
    }
  }
  std::vector<Rid> candidates;
  {
    SpinGuard sg(table_->secondary_latch_);
    for (const auto& s : table_->secondaries_) {
      if (s.col == index_col) {
        candidates = s.index->Lookup(equals);
        break;
      }
    }
  }
  // Postings accumulate one entry per updated version; visit each
  // base record once.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  EpochGuard guard(table_->epochs_);
  const uint32_t ncols = table_->schema_.num_columns();
  std::vector<Value> tmp(ncols, kNull);
  for (Rid rid : candidates) {
    Table::Range* r = table_->GetRange(table_->RangeOf(rid));
    if (r == nullptr) continue;
    Table::ReadSpec spec{as_of, nullptr, /*speculative=*/false};
    std::fill(tmp.begin(), tmp.end(), kNull);
    // Re-evaluate every predicate on the visible version — index
    // candidates are only hints (Section 3.1).
    Status s = table_->ResolveRecord(*r, table_->SlotOf(rid), spec,
                                     needed | 1ull, &tmp, nullptr);
    if (!s.ok()) continue;
    bool pass = true;
    for (const Filter& f : filters_) {
      if (!f.Matches(tmp[f.col])) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    if (agg_col != kNoAggregation) {
      if (sum != nullptr && tmp[agg_col] != kNull) Accumulate(sum, tmp[agg_col]);
      if (rows != nullptr) ++*rows;
    } else if (visit != nullptr) {
      // Same delivery contract as the scan path: only projected
      // columns are materialized, the rest read ∅.
      Value key = tmp[0];
      ColumnMask project = project_ & table_->schema_.AllColumns();
      for (BitIter it((needed | 1ull) & ~project); it; ++it) {
        tmp[*it] = kNull;
      }
      (*visit)(key, tmp);
    }
  }
  return Status::OK();
}

void Query::ScanPartition(uint64_t range_id, uint32_t slot_begin,
                          uint32_t slot_end, ColumnMask needed,
                          Timestamp as_of, ColumnId agg_col, const RowFn* visit,
                          uint64_t* sum, uint64_t* rows) const {
  Table::Range* r = table_->GetRange(range_id);
  if (r == nullptr) return;
  uint32_t occ = r->occupied.load(std::memory_order_acquire);
  if (slot_end > occ) slot_end = occ;
  if (slot_begin >= slot_end) return;

  const uint32_t ncols = table_->schema_.num_columns();
  const ColumnMask project = project_ & table_->schema_.AllColumns();
  // Columns resolved for filters/keys but NOT projected must read ∅
  // in delivered rows; `tmp` is reused across slots, so scrub them at
  // every delivery or a fast-path row would leak the previous
  // slow-path row's values.
  const ColumnMask scrub =
      visit != nullptr ? (needed | 1ull) & ~project : 0;

  // Merged fast path setup (Section 4.2): every needed data column
  // plus the lineage metadata must come from ONE merge generation —
  // mixed generations are the inconsistent read of Lemma 3, repaired
  // by the chain walk (Theorem 2). Every segment the partition scans
  // is PINNED for the partition's duration: the cursors below read the
  // compressed payloads directly, and the pins keep the eviction sweep
  // away while this range is being consumed (demand-loading cold
  // pages exactly once per partition, not once per slot).
  BaseSegment* seg_lut =
      r->base[ncols + kBaseLastUpdated].load(std::memory_order_acquire);
  BaseSegment* seg_enc =
      r->base[ncols + kBaseSchemaEnc].load(std::memory_order_acquire);
  BaseSegment* seg_start =
      r->base[ncols + kBaseStartTime].load(std::memory_order_acquire);
  bool fast = seg_lut != nullptr && seg_enc != nullptr &&
              seg_start != nullptr && seg_lut->tps == seg_enc->tps;
  uint32_t tps = fast ? seg_enc->tps : 0;
  uint32_t fast_slots =
      fast ? std::min({seg_lut->num_slots, seg_enc->num_slots,
                       seg_start->num_slots})
           : 0;
  std::vector<BaseSegment*> data_seg(ncols, nullptr);
  std::vector<PageHandle> data_page(ncols);
  std::vector<CompressedColumn::Cursor> data_cur(ncols);
  for (BitIter it(needed); fast && it; ++it) {
    uint32_t col = static_cast<uint32_t>(*it);
    BaseSegment* seg = table_->Segment(*r, col);
    if (seg == nullptr || seg->tps != tps) {
      fast = false;
      break;
    }
    data_seg[col] = seg;
    data_page[col] = seg->Pin();
    data_cur[col] = data_page[col].cursor();
    fast_slots = std::min(fast_slots, seg->num_slots);
  }
  PageHandle lut_page, enc_page, start_page;
  CompressedColumn::Cursor lut_cur, enc_cur, start_cur;
  if (fast) {
    lut_page = seg_lut->Pin();
    enc_page = seg_enc->Pin();
    start_page = seg_start->Pin();
    lut_cur = lut_page.cursor();
    enc_cur = enc_page.cursor();
    start_cur = start_page.cursor();
  }

  std::vector<Value> tmp(ncols, kNull);
  for (uint32_t slot = slot_begin; slot < slot_end; ++slot) {
    if (fast && slot < fast_slots) {
      uint64_t iv = r->indirection[slot].load(std::memory_order_acquire);
      uint32_t seq = IndirSeq(iv);
      if (seq <= tps) {
        Value lut = lut_cur.At(slot);
        Value start = start_cur.At(slot);
        bool horizon_ok =
            as_of == kMaxTimestamp || (lut != kNull && lut < as_of);
        if (horizon_ok && start != kNull && start < as_of) {
          Value enc = enc_cur.At(slot);
          if (IsDeleteRecord(enc)) continue;
          // Predicate pushdown: evaluate directly on the compressed
          // segments; rejected slots never materialize a row.
          bool pass = true;
          for (const Filter& f : filters_) {
            if (!f.Matches(data_cur[f.col].At(slot))) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          if (agg_col != kNoAggregation) {
            Value v = data_cur[agg_col].At(slot);
            if (v != kNull) Accumulate(sum, v);
            ++*rows;
          } else if (visit != nullptr) {
            for (BitIter it(scrub); it; ++it) tmp[*it] = kNull;
            for (BitIter it(project); it; ++it) {
              tmp[*it] = data_cur[*it].At(slot);
            }
            (*visit)(data_cur[0].At(slot), tmp);
          }
          continue;
        }
        if (start == kNull) continue;  // aborted insert slot
      }
    }
    // Slow path: resolve through the lineage chain (also covers the
    // historic store and in-flight writers).
    Table::ReadSpec spec{as_of, nullptr, /*speculative=*/false};
    for (BitIter it(needed); it; ++it) tmp[*it] = kNull;
    Status s = table_->ResolveRecord(*r, slot, spec, needed, &tmp, nullptr);
    if (!s.ok()) continue;
    bool pass = true;
    for (const Filter& f : filters_) {
      if (!f.Matches(tmp[f.col])) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    if (agg_col != kNoAggregation) {
      if (tmp[agg_col] != kNull) Accumulate(sum, tmp[agg_col]);
      ++*rows;
    } else if (visit != nullptr) {
      Value key = tmp[0];
      for (BitIter it(scrub); it; ++it) tmp[*it] = kNull;
      (*visit)(key, tmp);
    }
  }
}

}  // namespace lstore
