// L-Store table: the lineage-based storage architecture (Sections 2-5).
//
// One Table owns:
//  * update ranges (base page segments + tail segments + the in-place
//    Indirection column),
//  * insert ranges backed by table-level tail pages (Section 3.2),
//  * a primary index (key -> base RID) and optional secondary indexes,
//  * a background merge thread (Section 4.1) with epoch-based page
//    reclamation (Figure 6),
//  * historic compression of merged tail pages (Section 4.3),
//  * optional redo-only logging with crash recovery (Section 5.1.3).
//
// Thread safety: all public operations are safe for concurrent use.
// Readers never latch pages; writers synchronize per record through
// the Indirection latch bit (Section 5.1.1).

#ifndef LSTORE_CORE_TABLE_H_
#define LSTORE_CORE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/page_handle.h"
#include "buffer/segment_store.h"
#include "common/config.h"
#include "common/epoch.h"
#include "common/latch.h"
#include "common/status.h"
#include "common/types.h"
#include "core/schema.h"
#include "index/primary_index.h"
#include "index/secondary_index.h"
#include "log/redo_log.h"
#include "obs/metrics.h"
#include "storage/compressed_column.h"
#include "storage/tail_segment.h"
#include "txn/transaction.h"
#include "txn/transaction_manager.h"
#include "txn/txn.h"

namespace lstore {

class MergeManager;
class HistoricStore;
class Query;
class Table;
class GroupCommitQueue;

// Forward declarations for the friend grants below; the public
// surface (documentation + default arguments) lives in
// core/commit_pipeline.h — call sites should include that header.
Status CommitAcrossTables(TransactionManager& tm, Transaction* txn,
                          const std::vector<Table*>& tables,
                          GroupCommitQueue* group);
void AbortAcrossTables(TransactionManager& tm, Transaction* txn,
                       const std::vector<Table*>& tables,
                       bool durable_abort);

/// Read-optimized form of one physical column of one update range,
/// carrying its in-page lineage (Section 4.2). The payload lives in a
/// buffer-managed SegmentPage: possibly cold (evicted to the table's
/// segment store) and demand-loaded through Pin(). Merge generations
/// that leave a column untouched share the page.
struct BaseSegment {
  /// Tail-page sequence number: how many tail records of the range
  /// have been consolidated into this segment.
  uint32_t tps = 0;
  /// Number of base slots covered (== insert-merged prefix length).
  uint32_t num_slots = 0;
  std::shared_ptr<SegmentPage> page;

  /// Pin the payload (demand-loading if cold). Callers must hold an
  /// EpochGuard of the owning table for the handle's lifetime.
  PageHandle Pin() const { return PageHandle(page.get()); }
};

/// Physical base columns beyond the data columns.
/// (The Indirection column is *not* a segment: it is the in-place
/// updated atomic array.)
enum BaseMetaColumn : uint32_t {
  kBaseStartTime = 0,   ///< original insertion commit time (preserved)
  kBaseLastUpdated = 1, ///< start time of the newest merged tail record
  kBaseSchemaEnc = 2,   ///< merged schema encoding (incl. delete flag)
};
inline constexpr uint32_t kBaseMetaColumns = 3;

/// Aggregate counters exposed for benchmarks and tests.
struct TableStats {
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> ww_aborts{0};          ///< write-write conflicts
  std::atomic<uint64_t> validation_aborts{0};
  std::atomic<uint64_t> merges{0};             ///< update merges completed
  std::atomic<uint64_t> insert_merges{0};
  std::atomic<uint64_t> tail_records_merged{0};
  std::atomic<uint64_t> segments_retired{0};
  std::atomic<uint64_t> historic_compressions{0};
  std::atomic<uint64_t> tail_chain_hops{0};    ///< reads that left base pages
};

class Table : public TxnContext {
 public:
  Table(std::string name, Schema schema, TableConfig config,
        TransactionManager* txn_manager = nullptr);

  /// Unnamed-table convenience constructor.
  Table(Schema schema, TableConfig config,
        TransactionManager* txn_manager = nullptr)
      : Table("table", std::move(schema), std::move(config), txn_manager) {}
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // --- sessions ------------------------------------------------------------

  /// Begin an RAII transaction session bound to this table: commit
  /// with txn.Commit(); a session destroyed while active aborts
  /// automatically (Section 5.1.1).
  Txn Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);

  /// A read snapshot covering every currently-committed transaction,
  /// WITHOUT advancing the logical clock — scans are not events in
  /// the commit order, so they must not inflate it.
  Timestamp Now() const;

  // --- fine-grained manipulation (Section 3) -------------------------------
  // Every session operation rejects a finished (committed/aborted)
  // Txn up front: a retired transaction id would publish permanently
  // invisible versions and leak index entries.

  /// Insert a full row; row[0] is the primary key.
  Status Insert(Txn& txn, const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Insert(txn.raw(), row);
  }

  /// Update the columns in `mask` to `row[col]` for each set bit.
  /// Column 0 (the key) must not be updated.
  Status Update(Txn& txn, Value key, ColumnMask mask,
                const std::vector<Value>& row) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Update(txn.raw(), key, mask, row);
  }

  /// Delete = update writing the delete tombstone (Section 3.1).
  Status Delete(Txn& txn, Value key) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Delete(txn.raw(), key);
  }

  /// Read the columns in `mask` of the visible version into
  /// out[col] (out is resized to num_columns; unrequested cols = ∅).
  Status Read(Txn& txn, Value key, ColumnMask mask, std::vector<Value>* out) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return Read(txn.raw(), key, mask, out);
  }

  /// Speculative read ([18]): also sees pre-commit versions and adds
  /// a commit dependency.
  Status SpeculativeRead(Txn& txn, Value key, ColumnMask mask,
                         std::vector<Value>* out) {
    LSTORE_RETURN_IF_ERROR(CheckActive(txn));
    return SpeculativeRead(txn.raw(), key, mask, out);
  }

  /// Time-travel point read at a historical timestamp (no txn).
  Status ReadAsOf(Value key, Timestamp as_of, ColumnMask mask,
                  std::vector<Value>* out);

  // --- batched point operations --------------------------------------------
  // Amortize index probes (one sharded MultiGet), epoch entry, latch
  // traffic, and redo logging (ONE log frame per batch) over many keys.

  /// Read `mask` of every key; rows->at(i) holds the columns of
  /// keys[i] (missing/invisible keys leave the row empty). Returns
  /// the first per-key error if any (reads continue past misses);
  /// statuses (optional) receives each key's individual outcome.
  Status MultiRead(Txn& txn, const std::vector<Value>& keys, ColumnMask mask,
                   std::vector<std::vector<Value>>* rows,
                   std::vector<Status>* statuses = nullptr);

  /// Insert many full rows with one redo-log frame. Stops at the
  /// first failing row (already-inserted rows stay in the session's
  /// writeset and commit/abort with it).
  Status InsertBatch(Txn& txn, const std::vector<std::vector<Value>>& rows);

  /// Update `mask` of keys[i] to rows[i] with one redo-log frame.
  /// Stops at the first failing key.
  Status UpdateBatch(Txn& txn, const std::vector<Value>& keys, ColumnMask mask,
                     const std::vector<std::vector<Value>>& rows);

  /// Delete every key with one index probe pass, one epoch entry, and
  /// one redo-log frame (mirrors UpdateBatch). Stops at the first
  /// failing key; already-deleted rows stay in the session's writeset
  /// and commit/abort with it.
  Status DeleteBatch(Txn& txn, const std::vector<Value>& keys);

  // --- analytics ------------------------------------------------------------

  /// Composable snapshot query (core/query.h): projection, row range,
  /// predicates, time travel, parallel partitioned execution. The sole
  /// scan surface — Sum/Count/Visit/Keys terminals.
  Query NewQuery() const;

  // --- secondary indexes (Section 3.1) --------------------------------------

  void CreateSecondaryIndex(ColumnId col);

  // --- maintenance -----------------------------------------------------------

  /// Foreground merge of one range (tests/benchmarks). Returns true
  /// if any tail records were consolidated.
  bool MergeRangeNow(uint64_t range_id);

  /// Foreground merge restricted to the given data columns —
  /// exercises independent per-column merging (Section 4.2, Lemma 3).
  bool MergeRangeColumns(uint64_t range_id, ColumnMask cols);

  /// Insert-merge: turn table-level tail pages into base segments for
  /// the committed prefix of the range (Section 3.2).
  bool InsertMergeNow(uint64_t range_id);

  /// Compress merged tail records older than every active snapshot
  /// into the historic store (Section 4.3). Returns #versions moved.
  size_t CompressHistoricNow(uint64_t range_id);

  /// Insert-merge every range up to current occupancy and run update
  /// merges until quiescent. For loading phases and tests.
  void FlushAll();

  /// Drain the merge queue (waits for the background thread).
  void WaitForMergeQueue();

  // --- introspection ---------------------------------------------------------

  const Schema& schema() const { return schema_; }
  const TableConfig& config() const { return config_; }
  const std::string& name() const { return name_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  EpochManager& epochs() const { return epochs_; }
  TableStats& stats() const { return stats_; }
  /// The metrics registry this table records into: the owning
  /// database's (shared across its tables) or an owned one for
  /// standalone tables — never null.
  MetricsRegistry* metrics() const { return metrics_; }
  /// Buffer pool managing this table's base segments (nullptr = fully
  /// resident base pages).
  BufferPool* buffer_pool() const { return buffer_pool_; }
  /// fsync the swap store so every segment reference a checkpoint is
  /// about to publish is durable first. No-op without a durable store.
  Status SyncSegmentStore();
  uint64_t num_rows() const { return next_row_.load(std::memory_order_acquire); }
  uint64_t num_ranges() const;
  uint32_t RangeTps(uint64_t range_id) const;
  uint32_t RangeTailLength(uint64_t range_id) const;

  /// For tests (Lemma 3): per-data-column TPS of a range.
  std::vector<uint32_t> RangeColumnTps(uint64_t range_id) const;

  /// Debug introspection: the version chain of a key, newest first.
  struct ChainEntry {
    uint32_t seq;
    Value raw_start;
    uint64_t schema_encoding;
    Value col_value;  ///< value of `col` in that record (∅ if absent)
  };
  std::vector<ChainEntry> DebugChain(Value key, ColumnId col) const;

  /// Recover table contents by replaying the redo log at
  /// config.log_path (call on a freshly constructed, empty table).
  Status RecoverFromLog();

  /// Full restart recovery (Section 5.1.3): load the checkpoint file
  /// (may be empty = none), replay the redo-log tail beyond
  /// `log_watermark`, resolve pending transaction outcomes, and
  /// rebuild the primary index and the Indirection column from Base
  /// RID backpointers (recovery option 2). Call on a freshly
  /// constructed, empty table. `db_commits` carries the database
  /// commit log's verdicts: cross-table transactions leave no commit
  /// record in the per-table logs, so their outcome resolves from it —
  /// on every participant or none.
  ///
  /// `log_paths` (optional) overrides the replay source with an
  /// ordered list of framed log files — the archive stitcher passes
  /// sealed segments followed by the live log, forming one
  /// LSN-continuous stream. `commit_horizon` truncates the outcome
  /// map for point-in-time restores: per-table commit records with
  /// commit_time > horizon are treated as never having committed
  /// (their tail records become aborted tombstones, exactly like a
  /// crash before the commit record).
  Status RecoverDurable(const std::string& checkpoint_file,
                        uint64_t log_watermark,
                        uint64_t checkpoint_checksum = 0,
                        const std::unordered_map<TxnId, Timestamp>*
                            db_commits = nullptr,
                        const std::vector<std::string>* log_paths = nullptr,
                        Timestamp commit_horizon = kMaxTimestamp);

  /// Columns carrying a secondary index (recorded in the checkpoint
  /// manifest so recovery can rebuild them).
  std::vector<ColumnId> SecondaryColumns() const;

 private:
  friend class MergeManager;
  friend class CheckpointIO;       ///< capture/restore (checkpoint/serde.cc)
  friend class CheckpointManager;  ///< log watermarks + truncation
  friend class Query;              ///< scan executor (core/query.cc)
  friend class Database;           ///< cross-table sessions share the ops
  friend class GroupCommitQueue;   ///< flushes log_ on behalf of commits
  friend Status CommitAcrossTables(TransactionManager& tm, Transaction* txn,
                                   const std::vector<Table*>& tables,
                                   GroupCommitQueue* group);
  friend void AbortAcrossTables(TransactionManager& tm, Transaction* txn,
                                const std::vector<Table*>& tables,
                                bool durable_abort);

  // --- session plumbing (TxnContext) ---------------------------------------

  /// Reject finished sessions and sessions begun on a different
  /// engine: a foreign-host Txn would bypass this table in the commit
  /// pipeline, leaving its writes unstamped forever. Sessions begun
  /// on the owning Database are valid on every member table.
  Status CheckActive(const Txn& txn) const {
    if (!txn.active()) {
      return Status::InvalidArgument("transaction finished");
    }
    const TxnContext* h = txn.host();
    if (h != static_cast<const TxnContext*>(this) && h != txn_scope_) {
      return Status::InvalidArgument("transaction bound to another engine");
    }
    return Status::OK();
  }

  /// Single-table commit: a thin wrapper over the unified pipeline
  /// (core/commit_pipeline.cc) with {this} as the only candidate.
  Status CommitTxn(Transaction* txn) override;
  void AbortTxn(Transaction* txn) override;

  // Commit protocol phases, invoked by the pipeline.

  /// Validate this table's share of the readset at `commit_time`.
  Status ValidateReads(Transaction* txn, Timestamp commit_time);
  /// Append + flush the commit record to this table's redo log.
  Status WriteCommitRecord(Transaction* txn, Timestamp commit_time);
  /// Append the commit record WITHOUT flushing — the group-commit
  /// queue performs the (shared) flush. Returns its LSN (0 = no log).
  uint64_t AppendCommitRecord(Transaction* txn, Timestamp commit_time);
  /// Append an abort record; `flush` pushes it to the OS (fsync under
  /// sync_commit). The flush matters ONLY when the durability step
  /// already appended/flushed a commit record for this transaction
  /// (per-table record whose pipeline failed later, or a commit-log
  /// record whose flush failed) — replay treats the later abort as
  /// authoritative, so it must not sit in the buffer when the process
  /// dies. Ordinary aborts (user abort, validation failure) skip the
  /// flush: with no commit record anywhere, replay aborts them anyway.
  void WriteAbortRecord(Transaction* txn, bool flush);
  /// Stamp this table's writes with the outcome (commit time or
  /// kAbortedStamp); rolls back inserted index keys on abort.
  void StampWrites(Transaction* txn, Value outcome);

  // Transaction-pointer cores of the public session operations.
  Status Insert(Transaction* txn, const std::vector<Value>& row);
  Status Update(Transaction* txn, Value key, ColumnMask mask,
                const std::vector<Value>& row);
  Status Delete(Transaction* txn, Value key);
  Status Read(Transaction* txn, Value key, ColumnMask mask,
              std::vector<Value>* out);
  Status SpeculativeRead(Transaction* txn, Value key, ColumnMask mask,
                         std::vector<Value>* out);

  struct Range {
    uint64_t id = 0;
    /// Inserted slots (monotone).
    std::atomic<uint32_t> occupied{0};
    /// Slots covered by base segments (insert-merged prefix).
    std::atomic<uint32_t> based{0};
    /// The in-place Indirection column (latch bit + latest tail seq).
    std::unique_ptr<std::atomic<uint64_t>[]> indirection;
    /// Ever-updated column mask per base record (base Schema Encoding,
    /// maintained under the indirection latch).
    std::unique_ptr<std::atomic<uint64_t>[]> ever_updated;
    /// Table-level tail pages (inserts; all columns materialized).
    TailSegment inserts;
    /// Regular tail pages (updates; lazy per-column allocation).
    TailSegment updates;
    /// Base segments: [0..num_cols) data, then kBaseMetaColumns.
    std::vector<std::atomic<BaseSegment*>> base;
    /// Highest TPS across segments (merge bookkeeping).
    std::atomic<uint32_t> merged_tps{0};
    /// Tail seqs < boundary live in the historic store.
    std::atomic<uint32_t> historic_boundary{1};
    std::atomic<HistoricStore*> historic{nullptr};
    /// Set while queued for background merge.
    std::atomic<bool> queued{false};
    /// Serializes merges of this range.
    SpinLatch merge_latch;

    Range(uint64_t id, uint32_t range_size, uint32_t num_cols,
          uint32_t tail_page_slots);
  };

  // Internal read machinery -------------------------------------------------

  struct ReadSpec {
    Timestamp as_of;        ///< kMaxTimestamp = latest committed
    Transaction* txn;       ///< may be null (pure snapshot read)
    bool speculative;       ///< allow pre-commit versions
  };

  enum class Visibility { kVisible, kInvisible, kVisibleSpeculative };

  Range* GetRange(uint64_t id) const;
  Range* EnsureRange(uint64_t id);
  uint64_t RangeOf(Rid rid) const { return rid / config_.range_size; }
  uint32_t SlotOf(Rid rid) const {
    return static_cast<uint32_t>(rid % config_.range_size);
  }

  /// Resolve the visible version of (range, slot): fills out[col] for
  /// the requested mask; reports the visible version's seq (0 = base)
  /// and whether the record is deleted / not visible.
  Status ResolveRecord(Range& r, uint32_t slot, const ReadSpec& spec,
                       ColumnMask needed, std::vector<Value>* out,
                       uint32_t* observed_seq) const;
  Status ResolveRecordOnce(Range& r, uint32_t slot, const ReadSpec& spec,
                           ColumnMask needed, std::vector<Value>* out,
                           uint32_t* observed_seq, bool* consistent) const;

  /// Visibility of a version whose raw Start Time is `raw`; performs
  /// lazy commit-time stamping via `slot_ref` when the writer has
  /// committed (Section 5.1.1). May update `raw` in place.
  Visibility CheckVisible(std::atomic<Value>* slot_ref, Value& raw,
                          const ReadSpec& spec, TxnId* dependency) const;

  /// Value of a base (pre-update) column: from the base segment when
  /// the slot is insert-merged, else from the table-level tail pages.
  Value BaseValue(const Range& r, uint32_t slot, uint32_t physical_col) const;
  Value BaseDataValue(const Range& r, uint32_t slot, ColumnId col) const {
    return BaseValue(r, slot, col);
  }
  Value BaseMetaValue(const Range& r, uint32_t slot, uint32_t meta) const {
    return BaseValue(r, slot, schema_.num_columns() + meta);
  }
  /// Raw (possibly txn-id) start time of the base record.
  Value BaseStartRaw(const Range& r, uint32_t slot) const;
  std::atomic<Value>* BaseStartSlot(Range& r, uint32_t slot) const;

  BaseSegment* Segment(const Range& r, uint32_t physical_col) const {
    return r.base[physical_col].load(std::memory_order_acquire);
  }

  // Write machinery ----------------------------------------------------------
  // `log_sink` != nullptr collects redo records instead of appending
  // them — the batch operations emit ONE log frame per batch. Callers
  // of the *Impl forms hold the epoch pin.

  Status InsertImpl(Transaction* txn, const std::vector<Value>& row,
                    RedoLog::Batch* log_sink);
  Status WriteTailVersion(Transaction* txn, Range& r, uint32_t slot,
                          ColumnMask mask, const std::vector<Value>& row,
                          bool is_delete, RedoLog::Batch* log_sink);
  void LogTailAppend(const Range& r, uint32_t seq, bool insert,
                     Value start_raw, TxnId txn_id,
                     RedoLog::Batch* log_sink);
  void MaybeScheduleMerge(Range& r);

  // Merge machinery (called by MergeManager and *_Now) -----------------------

  bool RunUpdateMerge(Range& r, ColumnMask data_cols, bool all_columns);
  bool RunInsertMerge(Range& r);
  size_t RunHistoricCompression(Range& r);

  // Buffer-managed segment pages ---------------------------------------------

  /// Build the read-optimized page for `vals`: writes it through to
  /// the segment store (so it is evictable — and checkpointable by
  /// reference — immediately) and registers it with the pool. With no
  /// pool/store configured the page is plainly resident, as before.
  std::shared_ptr<SegmentPage> MakeSegmentPage(std::vector<Value> vals);

  /// A cold page backed by already-durable store bytes (lazy restore:
  /// recovery maps segments instead of loading them). Format + width
  /// come from the checkpoint's segment-ref frame so fixed-width
  /// segments keep their O(1) cold point reads across restarts.
  std::shared_ptr<SegmentPage> MakeColdSegmentPage(
      uint32_t num_slots, uint64_t offset, uint64_t length,
      uint32_t checksum, SwapFormat format = SwapFormat::kVarint,
      uint32_t value_width = 0);
  void StampCommitTime(std::atomic<Value>* slot, Value observed_raw) const;

  /// Scan helpers.
  bool VisibleAtSnapshot(Value raw_start, Timestamp as_of) const;

  // Recovery machinery (bodies in checkpoint/recovery.cc) ---------------------

  /// Replay the redo log beyond `watermark`, stamp every unresolved
  /// Start Time with its logged outcome (or the aborted tombstone,
  /// seeding the outcome map with the database commit log's verdicts),
  /// rebuild indexes + Indirection, and fast-forward the clock.
  /// See RecoverDurable for `log_paths` / `commit_horizon`.
  Status ReplayAndRebuild(uint64_t watermark,
                          const std::unordered_map<TxnId, Timestamp>*
                              db_commits = nullptr,
                          const std::vector<std::string>* log_paths = nullptr,
                          Timestamp commit_horizon = kMaxTimestamp);

  std::string name_;
  Schema schema_;
  TableConfig config_;

  /// Observability (src/obs/): injected by the owning Database or
  /// owned (standalone tables). Handles used on recording paths are
  /// looked up once here and cached — the hot paths never take the
  /// registry mutex.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_ = nullptr;
  struct MetricHandles {
    Histogram* merge_update_ns = nullptr;    ///< update-merge duration
    Histogram* merge_insert_ns = nullptr;    ///< insert-merge duration
    Histogram* merge_historic_ns = nullptr;  ///< historic compression
    Histogram* query_partition_ns = nullptr; ///< per-partition scan time
    Counter* merge_rows = nullptr;           ///< tail records consolidated
    Counter* insert_rows_merged = nullptr;   ///< insert rows based
    Counter* historic_versions = nullptr;    ///< versions moved to historic
    Histogram* commit_publish_ns = nullptr;  ///< state flip + write stamping
    Counter* commits = nullptr;              ///< pipeline commits
    Counter* aborts = nullptr;               ///< pipeline aborts
  } obs_;

  /// The enclosing engine whose sessions are also valid here (the
  /// owning Database); set at registration, null for standalone tables.
  TxnContext* txn_scope_ = nullptr;

  /// The owning database's group-commit queue: single- and cross-table
  /// commits on this table share fsyncs through it (null for
  /// standalone tables and in-memory databases — inline flush).
  GroupCommitQueue* group_commit_ = nullptr;

  std::unique_ptr<TransactionManager> owned_txn_manager_;
  TransactionManager* txn_manager_;

  mutable EpochManager epochs_;
  PrimaryIndex primary_;
  struct SecondaryEntry {
    ColumnId col;
    std::unique_ptr<SecondaryIndex> index;
  };
  std::vector<SecondaryEntry> secondaries_;
  mutable SpinLatch secondary_latch_;

  std::atomic<uint64_t> next_row_{0};  ///< next base RID to hand out

  /// Two-level range directory with lock-free reads (growth under the
  /// latch; chunks are never moved once published).
  static constexpr uint32_t kRangeChunkSize = 1024;
  static constexpr uint32_t kMaxRangeChunks = 4096;
  struct RangeChunk {
    std::atomic<Range*> ranges[kRangeChunkSize] = {};
  };
  mutable SpinLatch ranges_latch_;
  std::unique_ptr<std::atomic<RangeChunk*>[]> chunks_;
  std::atomic<uint64_t> num_ranges_{0};

  std::unique_ptr<MergeManager> merge_manager_;
  std::unique_ptr<RedoLog> log_;

  /// Buffer-managed base storage: injected by the owning Database via
  /// TableConfig, or owned (env-knob fallback / standalone spill).
  /// The destructor body deletes every range — and with it every
  /// segment page — before any member is destroyed, so ordering here
  /// is not load-bearing.
  std::unique_ptr<BufferPool> owned_pool_;
  std::unique_ptr<SegmentStore> owned_store_;
  BufferPool* buffer_pool_ = nullptr;
  SegmentStore* segment_store_ = nullptr;

  mutable TableStats stats_;
};

}  // namespace lstore

#endif  // LSTORE_CORE_TABLE_H_
