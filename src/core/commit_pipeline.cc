#include "core/commit_pipeline.h"

#include <algorithm>
#include <chrono>

#include "core/table.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace lstore {

namespace {

/// Tables of `tables` that appear as an owner in the readset
/// (`readers`) or writeset (`writers`). Owners outside `tables` are
/// ignored: they belong to another engine sharing the manager and are
/// committed by that engine's own pipeline invocation.
void Participants(const Transaction& txn, const std::vector<Table*>& tables,
                  std::vector<Table*>* readers, std::vector<Table*>* writers) {
  auto add = [](std::vector<Table*>* v, Table* t) {
    if (std::find(v->begin(), v->end(), t) == v->end()) v->push_back(t);
  };
  for (Table* t : tables) {
    for (const WriteEntry& w : txn.writeset()) {
      if (w.owner == t) {
        add(writers, t);
        add(readers, t);  // validation also covers own-write tables
        break;
      }
    }
  }
  for (Table* t : tables) {
    for (const ReadEntry& e : txn.readset()) {
      if (e.owner == t) {
        add(readers, t);
        break;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// GroupCommitQueue
// ---------------------------------------------------------------------------

Status GroupCommitQueue::Commit(Transaction* txn, Timestamp commit_time,
                                const std::vector<Table*>& writers,
                                bool cross) {
  Request req;
  req.writers = writers;
  req.cross = cross;
  if (cross) {
    req.record.txn_id = txn->id();
    req.record.commit_time = commit_time;
    for (Table* t : writers) {
      // last_lsn is an upper bound on this transaction's payload LSNs
      // in that log (our appends are already in); a concurrent append
      // raising it merely delays commit-log truncation.
      req.record.participants.push_back(
          {t->name(), t->log_->last_lsn()});
    }
  }

  if (kTraceEnabled) {
    // Stamped for every request, not only when the histogram is wired:
    // the stamp also anchors the gc_queue_wait span of a traced
    // request, which the leader records on the submitter's behalf.
    req.enqueue_ns = NowNanos();
    req.trace_id = TraceContext::Current();
  }
  std::unique_lock<std::mutex> lk(mu_);
  queue_.push_back(&req);
  cv_.notify_all();
  for (;;) {
    cv_.wait(lk, [&] {
      return req.done || (!leader_active_ && queue_.front() == &req);
    });
    if (req.done) return req.result;

    // Become the leader. A lone leader waits up to the group-commit
    // window for followers; wake-ups from new arrivals keep it parked
    // until the deadline so the batch can grow.
    leader_active_ = true;
    if (window_us_ > 0 && queue_.size() == 1) {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(window_us_);
      while (std::chrono::steady_clock::now() < deadline) {
        cv_.wait_until(lk, deadline);
      }
    }
    std::vector<Request*> batch(queue_.begin(), queue_.end());
    queue_.clear();
    lk.unlock();

    ProcessBatch(batch);

    lk.lock();
    for (Request* r : batch) r->done = true;
    leader_active_ = false;
    cv_.notify_all();
    return req.result;
  }
}

void GroupCommitQueue::ProcessBatch(const std::vector<Request*>& batch) {
  std::lock_guard<std::mutex> window(window_mu_);
  HeartbeatWorkScope work(hb_.get());
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (batches_total_ != nullptr) batches_total_->Add(1);
  if (batch_size_ != nullptr) batch_size_->Record(batch.size());
  if (kTraceEnabled) {
    uint64_t now = NowNanos();
    for (Request* r : batch) {
      uint64_t wait_ns = now - r->enqueue_ns;
      if (queue_wait_ns_ != nullptr) queue_wait_ns_->Record(wait_ns);
      RecordSpan(r->trace_id, "gc_queue_wait", r->enqueue_ns, wait_ns);
    }
  }
  uint64_t fanout_t0 = kTraceEnabled ? NowNanos() : 0;

  // 1. Flush every distinct table log touched by the batch exactly
  // once: the payloads (and single-table commit records) of every
  // request become durable before any commit-log record can.
  std::vector<RedoLog*> logs;
  for (Request* r : batch) {
    for (Table* t : r->writers) {
      if (std::find(logs.begin(), logs.end(), t->log_.get()) == logs.end()) {
        logs.push_back(t->log_.get());
      }
    }
  }
  std::vector<Status> log_status(logs.size(), Status::OK());
  for (size_t i = 0; i < logs.size(); ++i) {
    log_status[i] = logs[i]->Flush(sync_);
  }
  for (Request* r : batch) {
    for (Table* t : r->writers) {
      size_t i = std::find(logs.begin(), logs.end(), t->log_.get()) -
                 logs.begin();
      if (!log_status[i].ok()) {
        r->result = log_status[i];
        break;
      }
    }
  }
  if (kTraceEnabled) {
    uint64_t fanout_dur = NowNanos() - fanout_t0;
    if (fanout_flush_ns_ != nullptr) fanout_flush_ns_->Record(fanout_dur);
    // The fan-out is shared work: every traced request in the batch
    // gets the whole window on its timeline (that IS its wait).
    for (Request* r : batch) {
      RecordSpan(r->trace_id, "log_flush", fanout_t0, fanout_dur);
    }
  }

  // 2. One commit-log record per surviving cross-table request; the
  // single flush below is their shared durability point.
  bool any_cross = false;
  for (Request* r : batch) {
    if (r->cross && r->result.ok()) {
      commit_log_->Append(r->record);
      any_cross = true;
    }
  }
  if (any_cross) {
    uint64_t flush_t0 = kTraceEnabled ? NowNanos() : 0;
    Status cs = commit_log_->Flush(sync_);
    if (kTraceEnabled) {
      uint64_t flush_dur = NowNanos() - flush_t0;
      if (commit_log_flush_ns_ != nullptr) {
        commit_log_flush_ns_->Record(flush_dur);
      }
      for (Request* r : batch) {
        if (r->cross && r->result.ok()) {
          RecordSpan(r->trace_id, "commit_fsync", flush_t0, flush_dur);
        }
      }
    }
    if (!cs.ok()) {
      for (Request* r : batch) {
        if (r->cross && r->result.ok()) r->result = cs;
      }
    }
  }
}

void GroupCommitQueue::AbortCross(TxnId txn_id) {
  CommitLogRecord rec;
  rec.txn_id = txn_id;
  rec.aborted = true;
  commit_log_->Append(rec);
  (void)commit_log_->Flush(sync_);
}

// ---------------------------------------------------------------------------
// Commit / abort
// ---------------------------------------------------------------------------

Status CommitAcrossTables(TransactionManager& tm, Transaction* txn,
                          const std::vector<Table*>& tables,
                          GroupCommitQueue* group) {
  if (txn->finished()) return Status::InvalidArgument("already finished");
  std::vector<Table*> readers, writers;
  Participants(*txn, tables, &readers, &writers);

  // 1. Acquire commit time and enter pre-commit (Section 5.1.1).
  Timestamp commit_time = tm.EnterPreCommit(txn);

  // 2. Validation (per isolation level) against every participant.
  for (Table* t : readers) {
    Status s = t->ValidateReads(txn, commit_time);
    if (!s.ok()) {
      t->stats().validation_aborts.fetch_add(1, std::memory_order_relaxed);
      AbortAcrossTables(tm, txn, writers);
      return s;
    }
  }

  // 3. Durability point (Section 5.1.3). Read-only participants write
  // nothing: their logs carry no records of this transaction to
  // resolve at replay. A single logged writer keeps its per-table
  // commit record (fast path); several logged writers commit through
  // ONE database commit-log record — all-or-nothing across tables —
  // and both flush through the group-commit queue when present.
  std::vector<Table*> logged;
  for (Table* t : writers) {
    if (t->log_ != nullptr) logged.push_back(t);
  }
  Status ds = Status::OK();
  if (group != nullptr && !logged.empty()) {
    bool cross = logged.size() > 1;
    if (!cross) logged[0]->AppendCommitRecord(txn, commit_time);
    ds = group->Commit(txn, commit_time, logged, cross);
  } else {
    for (Table* t : writers) {
      ds = t->WriteCommitRecord(txn, commit_time);
      if (!ds.ok()) break;
    }
  }
  if (!ds.ok()) {
    // A commit record may already be flushed (per-table) or appended
    // (commit log); the abort must be durable to override it. For a
    // cross-table transaction the authoritative abort is ONE marker in
    // the commit log — per-table abort records could land on a subset
    // of participants and re-split the transaction.
    if (group != nullptr && logged.size() > 1) group->AbortCross(txn->id());
    AbortAcrossTables(tm, txn, writers, /*durable_abort=*/true);
    return ds;
  }

  // 4. Publish: the state flip is the in-memory commit point for all
  // tables (readers that race see either the entry or the stamp).
  // Stage metrics land in the first participant's registry — tables of
  // a database share one registry, so the choice is cosmetic there.
  Table* metered = !writers.empty() ? writers[0]
                   : !readers.empty() ? readers[0]
                                      : nullptr;
  uint64_t publish_t0 = (kTraceEnabled && metered != nullptr) ? NowNanos() : 0;
  tm.MarkCommitted(txn);

  // 5. Post-commit: stamp Start Time slots so the manager entry can
  // be retired.
  for (Table* t : writers) t->StampWrites(txn, commit_time);
  tm.Retire(txn->id());
  txn->set_finished();
  if (metered != nullptr) {
    metered->obs_.commits->Add(1);
    if (publish_t0 != 0) {
      metered->obs_.commit_publish_ns->Record(NowNanos() - publish_t0);
    }
  }
  return Status::OK();
}

void AbortAcrossTables(TransactionManager& tm, Transaction* txn,
                       const std::vector<Table*>& tables,
                       bool durable_abort) {
  if (txn->finished()) return;
  std::vector<Table*> readers, writers;
  Participants(*txn, tables, &readers, &writers);
  tm.MarkAborted(txn);
  for (Table* t : writers) t->WriteAbortRecord(txn, durable_abort);
  // Tombstone the writeset (Section 5.1.3: aborted tail records are
  // only marked invalid; space is reclaimed by compression).
  for (Table* t : writers) t->StampWrites(txn, kAbortedStamp);
  tm.Retire(txn->id());
  txn->set_finished();
  Table* metered = !writers.empty() ? writers[0]
                   : !readers.empty() ? readers[0]
                                      : nullptr;
  if (metered != nullptr) metered->obs_.aborts->Add(1);
}

}  // namespace lstore
