#include "core/commit_pipeline.h"

#include <algorithm>

#include "core/table.h"

namespace lstore {

namespace {

/// Tables of `tables` that appear as an owner in the readset
/// (`readers`) or writeset (`writers`). Owners outside `tables` are
/// ignored: they belong to another engine sharing the manager and are
/// committed by that engine's own pipeline invocation.
void Participants(const Transaction& txn, const std::vector<Table*>& tables,
                  std::vector<Table*>* readers, std::vector<Table*>* writers) {
  auto add = [](std::vector<Table*>* v, Table* t) {
    if (std::find(v->begin(), v->end(), t) == v->end()) v->push_back(t);
  };
  for (Table* t : tables) {
    for (const WriteEntry& w : txn.writeset()) {
      if (w.owner == t) {
        add(writers, t);
        add(readers, t);  // validation also covers own-write tables
        break;
      }
    }
  }
  for (Table* t : tables) {
    for (const ReadEntry& e : txn.readset()) {
      if (e.owner == t) {
        add(readers, t);
        break;
      }
    }
  }
}

}  // namespace

Status CommitAcrossTables(TransactionManager& tm, Transaction* txn,
                          const std::vector<Table*>& tables) {
  if (txn->finished()) return Status::InvalidArgument("already finished");
  std::vector<Table*> readers, writers;
  Participants(*txn, tables, &readers, &writers);

  // 1. Acquire commit time and enter pre-commit (Section 5.1.1).
  Timestamp commit_time = tm.EnterPreCommit(txn);

  // 2. Validation (per isolation level) against every participant.
  for (Table* t : readers) {
    Status s = t->ValidateReads(txn, commit_time);
    if (!s.ok()) {
      t->stats().validation_aborts.fetch_add(1, std::memory_order_relaxed);
      AbortAcrossTables(tm, txn, writers);
      return s;
    }
  }

  // 3. Commit record + group-commit flush in each participating log
  // (Section 5.1.3). Read-only participants write nothing: their logs
  // carry no records of this transaction to resolve at replay.
  for (Table* t : writers) {
    Status s = t->WriteCommitRecord(txn, commit_time);
    if (!s.ok()) {
      AbortAcrossTables(tm, txn, writers);
      return s;
    }
  }

  // 4. Publish: the state flip is the commit point for all tables.
  tm.MarkCommitted(txn);

  // 5. Post-commit: stamp Start Time slots so the manager entry can
  // be retired (readers that raced see either the entry or the stamp).
  for (Table* t : writers) t->StampWrites(txn, commit_time);
  tm.Retire(txn->id());
  txn->set_finished();
  return Status::OK();
}

void AbortAcrossTables(TransactionManager& tm, Transaction* txn,
                       const std::vector<Table*>& tables) {
  if (txn->finished()) return;
  std::vector<Table*> readers, writers;
  Participants(*txn, tables, &readers, &writers);
  tm.MarkAborted(txn);
  for (Table* t : writers) t->WriteAbortRecord(txn);
  // Tombstone the writeset (Section 5.1.3: aborted tail records are
  // only marked invalid; space is reclaimed by compression).
  for (Table* t : writers) t->StampWrites(txn, kAbortedStamp);
  tm.Retire(txn->id());
  txn->set_finished();
}

}  // namespace lstore
