// Historic store: compressed, read-only representation of merged tail
// records (Section 4.3, Table 6).
//
// Versions are re-ordered by base RID, inlined contiguously per
// record, and delta-compressed (zigzag varints) per column. The store
// serves time-travel reads of versions that fell outside every active
// snapshot; the original tail pages below the boundary are reclaimed.

#ifndef LSTORE_CORE_HISTORIC_H_
#define LSTORE_CORE_HISTORIC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace lstore {

class HistoricStore {
 public:
  /// One version of one record, as fed by the compression pass and as
  /// returned by decoding (seq ascending within a record).
  struct Version {
    uint32_t seq;
    Timestamp start_time;   ///< commit time (always resolved)
    uint64_t schema_encoding;
    ColumnMask mask;        ///< materialized data columns
    std::vector<Value> values;  ///< one per set bit of mask, low→high
  };

  /// Build a store covering tail seqs [1, boundary] of one range.
  /// `per_slot` maps base slot → versions (any order; sorted inside).
  /// `previous` (may be null) is the store being replaced; its
  /// contents are carried over.
  static HistoricStore* Build(
      uint32_t boundary,
      const std::unordered_map<uint32_t, std::vector<Version>>& per_slot,
      const HistoricStore* previous, uint32_t num_columns);

  /// Highest tail seq contained.
  uint32_t boundary() const { return boundary_; }

  /// Decode all versions of a base slot (empty if none). Versions are
  /// returned seq-ascending. Cold path: decompresses on demand.
  std::vector<Version> VersionsOf(uint32_t slot) const;

  /// Resolve the value of `col` for the version chain entered at
  /// `entry_seq` (i.e. newest seq <= entry_seq that materializes the
  /// column and whose start_time < as_of). Returns false if no such
  /// version exists (caller falls through to the base record).
  bool ResolveColumn(uint32_t slot, uint32_t entry_seq, ColumnId col,
                     Timestamp as_of, Value* out, bool* deleted) const;

  size_t byte_size() const { return blob_.size(); }
  size_t num_records() const { return offsets_.size(); }
  size_t num_versions() const { return num_versions_; }

  /// Base slots that have at least one compressed version (unordered).
  std::vector<uint32_t> Slots() const;

  /// Checkpoint serialization: the store is immutable after Build, so
  /// a byte-for-byte copy of the blob plus the offset directory fully
  /// reconstructs it (src/checkpoint/ serde, Section 5.1.3).
  void EncodeTo(std::string* out) const;
  static HistoricStore* DecodeFrom(const char* data, size_t size);

 private:
  HistoricStore() = default;

  void EncodeSlot(uint32_t slot, const std::vector<Version>& versions);

  uint32_t boundary_ = 0;
  uint32_t num_columns_ = 0;
  size_t num_versions_ = 0;
  /// slot → byte offset of its encoded version block (ordered build:
  /// blocks are written in ascending slot order, Table 6).
  std::unordered_map<uint32_t, size_t> offsets_;
  std::string blob_;
};

}  // namespace lstore

#endif  // LSTORE_CORE_HISTORIC_H_
