#include "core/database.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include <unordered_map>
#include <utility>

#include "archive/archive_manager.h"
#include "checkpoint/checkpoint_manager.h"
#include "common/thread_pool.h"
#include "core/commit_pipeline.h"
#include "log/commit_log.h"
#include "obs/flight_recorder.h"
#include "obs/reporter.h"
#include "obs/slow_op_log.h"
#include "obs/trace.h"

namespace lstore {

/// Database commit-log file name. Table logs are "<name>.log", so no
/// table name can collide with it.
static constexpr char kCommitLogFile[] = "COMMIT_LOG";

Database::Database() {
  // The watchdog exists on every database (in-memory ones get
  // on-demand sweeps via Health(); only durable opens start its
  // thread). DumpTrace reads the process-wide flight recorder, so the
  // capture is safe for the watchdog's whole lifetime.
  watchdog_ = std::make_unique<Watchdog>(&health_, &events_, &metrics_,
                                         [this] { return DumpTrace(); });
  // Snapshot-time collector: mirror levels kept by their subsystems
  // into gauges — zero cost on the subsystems' hot paths. `this`
  // outlives the registry (both are members), so the capture is safe.
  metrics_.AddCollector([this](MetricsRegistry& r) {
    BufferPoolStats bs = buffer_stats();
    r.GetGauge("lstore_buffer_hits", "Buffer-pool resident pin hits")
        ->Set(static_cast<int64_t>(bs.hits));
    r.GetGauge("lstore_buffer_misses", "Buffer-pool demand loads")
        ->Set(static_cast<int64_t>(bs.misses));
    r.GetGauge("lstore_buffer_evictions", "Buffer-pool clock evictions")
        ->Set(static_cast<int64_t>(bs.evictions));
    r.GetGauge("lstore_buffer_cold_point_reads",
               "Point reads decoded from cold fixed-width segments")
        ->Set(static_cast<int64_t>(bs.cold_point_reads));
    r.GetGauge("lstore_buffer_bytes_resident", "Resident payload bytes")
        ->Set(static_cast<int64_t>(bs.bytes_resident));
    r.GetGauge("lstore_buffer_budget_bytes", "Pool byte budget (0 = none)")
        ->Set(static_cast<int64_t>(bs.budget_bytes));
    r.GetGauge("lstore_buffer_pages", "Registered pages (resident or cold)")
        ->Set(static_cast<int64_t>(bs.pages));
    size_t epoch_pending = 0;
    {
      SpinGuard g(latch_);
      for (const auto& e : tables_) {
        epoch_pending += e.table->epochs().pending();
      }
    }
    r.GetGauge("lstore_epoch_pending",
               "Retired-but-unreclaimed epoch entries across tables")
        ->Set(static_cast<int64_t>(epoch_pending));
    if (kTraceEnabled) {
      // Mirror the flight recorder's monotonic overwrite count into a
      // counter: exchange keeps the delta exact even when several
      // databases in one process all run this collector.
      uint64_t dropped = FlightRecorder::Instance().dropped();
      uint64_t seen = trace_dropped_seen_.exchange(dropped);
      if (dropped > seen) {
        r.GetCounter("lstore_trace_ring_dropped_total",
                     "Flight-recorder spans overwritten before snapshot")
            ->Add(dropped - seen);
      }
    }
  });
}

Database::~Database() {
  // The watchdog stops BEFORE the subsystems it watches: no sweep may
  // observe a half-destroyed actor or emit into a dying event log.
  if (watchdog_ != nullptr) watchdog_->Stop();
  if (durable()) {
    events_.Emit(EventSeverity::kInfo, "db", "close");
  }
  // Stop the reporter first: its snapshot callback walks tables and
  // the buffer pool.
  if (reporter_ != nullptr) reporter_->Stop();
  // Stop background checkpointing before tables are torn down (the
  // unique_ptr member order would do it too; be explicit).
  if (checkpoint_manager_ != nullptr) checkpoint_manager_->Stop();
}

HealthReport Database::Health() {
  HealthReport report = watchdog_->SweepOnce();
  report.recent_events = events_.Recent(32);
  return report;
}

// ---------------------------------------------------------------------------
// Table registry
// ---------------------------------------------------------------------------

Status Database::CreateTableInternal(const std::string& name, Schema schema,
                                     TableConfig config, Table** out) {
  // Buffer-managed base storage: with a pool, every table shares it
  // and gets its own swap store under the directory. WITHOUT a pool,
  // an existing .segs file is still opened — a database checkpointed
  // with paging on must reopen with paging off: its lazily restored
  // segments hydrate on first touch and then stay resident. Opening
  // an existing file keeps previously recorded offsets valid, so a
  // manifest that references them recovers lazily. The filesystem
  // work runs BEFORE the registry spin latch (GetTable callers must
  // not spin through syscalls); duplicate creations are already
  // serialized by ddl_mu_, and on the duplicate-name path below the
  // freshly opened handle is simply dropped.
  std::unique_ptr<SegmentStore> store;
  if (durable()) {
    std::string segs_path = dir_ + "/" + name + ".segs";
    struct ::stat st;
    bool segs_exists = ::stat(segs_path.c_str(), &st) == 0;
    if (buffer_pool_ != nullptr || segs_exists) {
      store = std::make_unique<SegmentStore>();
      LSTORE_RETURN_IF_ERROR(store->Open(segs_path));
      config.buffer_pool = buffer_pool_.get();
      config.segment_store = store.get();
      config.verify_segment_refs = durability_.verify_segment_store_on_open;
    }
  }
  // Every table of a database records into the shared registry, and
  // its merge thread heartbeats into the shared health registry.
  config.metrics = &metrics_;
  config.health = &health_;
  SpinGuard g(latch_);
  for (const auto& e : tables_) {
    if (e.name == name) return Status::AlreadyExists("table exists");
  }
  if (store != nullptr) segment_stores_[name] = std::move(store);
  tables_.push_back(Entry{
      name, std::make_unique<Table>(name, std::move(schema),
                                    std::move(config), &txn_manager_)});
  // Sessions begun on this database are valid on the member table,
  // and commits on the member table share the database's group-commit
  // stage (single-table sessions batch fsyncs with everyone else).
  tables_.back().table->txn_scope_ = this;
  tables_.back().table->group_commit_ = group_commit_.get();
  if (out != nullptr) *out = tables_.back().table.get();
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, Schema schema,
                             TableConfig config) {
  std::lock_guard<std::mutex> ddl(ddl_mu_);
  if (durable()) {
    if (GetTable(name) != nullptr) return Status::AlreadyExists("table exists");
    // A previously dropped table of the same name must leave no trace:
    // a stale manifest entry or log file would be matched by name at
    // the next Open and resurrect the old data.
    if (checkpoint_manager_ != nullptr) {
      LSTORE_RETURN_IF_ERROR(checkpoint_manager_->ForgetTable(name));
    }
    config.enable_logging = true;
    config.log_path = dir_ + "/" + name + ".log";
    config.sync_commit = durability_.sync_commit;
    config.sync_counter = durability_.sync_counter;
    std::remove(config.log_path.c_str());
    // A stale swap store of a previously dropped table must not be
    // appended to: its old offsets are garbage for the new table.
    std::remove((dir_ + "/" + name + ".segs").c_str());
    // Stale archived segments likewise: the new table's log restarts
    // at LSN 1, so old sealed prefixes would poison any future stitch.
    if (archive_ != nullptr) archive_->ForgetTable(name);
  }
  LSTORE_RETURN_IF_ERROR(
      CreateTableInternal(name, std::move(schema), std::move(config), nullptr));
  if (durable()) return PersistCatalog();
  return Status::OK();
}

Table* Database::GetTable(const std::string& name) {
  SpinGuard g(latch_);
  for (auto& e : tables_) {
    if (e.name == name) return e.table.get();
  }
  return nullptr;
}

Status Database::DropTable(const std::string& name) {
  // Serialize against checkpoints: RunCheckpoint walks raw Table
  // pointers and must never see one destroyed mid-capture.
  std::lock_guard<std::mutex> ddl(ddl_mu_);
  std::string log_path;
  {
    SpinGuard g(latch_);
    auto it = std::find_if(tables_.begin(), tables_.end(),
                           [&](const Entry& e) { return e.name == name; });
    if (it == tables_.end()) return Status::NotFound("no such table");
    log_path = it->table->config().log_path;
  }
  if (durable()) {
    // Durable state first, memory last, so a failed persist (e.g.
    // ENOSPC) leaves the drop cleanly retryable. Order within the
    // durable state: the catalog rules existence, so rewrite it
    // first; then the manifest entry + checkpoint files; the log
    // last (a crash in between leaves only ignorable orphans).
    LSTORE_RETURN_IF_ERROR(PersistCatalogExcluding(name));
    if (checkpoint_manager_ != nullptr) {
      LSTORE_RETURN_IF_ERROR(checkpoint_manager_->ForgetTable(name));
    }
    if (!log_path.empty()) std::remove(log_path.c_str());
    if (archive_ != nullptr) archive_->ForgetTable(name);
  }
  {
    SpinGuard g(latch_);
    auto it = std::find_if(tables_.begin(), tables_.end(),
                           [&](const Entry& e) { return e.name == name; });
    if (it != tables_.end()) tables_.erase(it);
  }
  // The table (and with it every cold page referencing the store) is
  // gone; drop the swap store last.
  segment_stores_.erase(name);
  if (durable()) std::remove((dir_ + "/" + name + ".segs").c_str());
  return Status::OK();
}

Status Database::CreateSecondaryIndex(const std::string& table,
                                      ColumnId col) {
  std::lock_guard<std::mutex> ddl(ddl_mu_);
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table");
  if (col >= t->schema().num_columns()) {
    return Status::InvalidArgument("bad column");
  }
  for (ColumnId existing : t->SecondaryColumns()) {
    if (existing == col) return Status::AlreadyExists("index exists");
  }
  t->CreateSecondaryIndex(col);
  if (durable()) return PersistCatalog();
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  SpinGuard g(latch_);
  std::vector<std::string> names;
  for (const auto& e : tables_) names.push_back(e.name);
  return names;
}

std::vector<std::pair<std::string, Table*>> Database::TableHandles() const {
  SpinGuard g(latch_);
  std::vector<std::pair<std::string, Table*>> out;
  out.reserve(tables_.size());
  for (const auto& e : tables_) out.emplace_back(e.name, e.table.get());
  return out;
}

Status Database::PersistCatalog() { return PersistCatalogExcluding(""); }

Status Database::PersistCatalogExcluding(const std::string& skip) {
  std::vector<CatalogEntry> entries;
  {
    SpinGuard g(latch_);
    for (const auto& e : tables_) {
      if (!skip.empty() && e.name == skip) continue;
      CatalogEntry ce;
      ce.name = e.name;
      const Schema& s = e.table->schema();
      for (ColumnId c = 0; c < s.num_columns(); ++c) {
        ce.columns.push_back(s.name(c));
      }
      ce.config = e.table->config();
      ce.secondary_columns = e.table->SecondaryColumns();
      entries.push_back(std::move(ce));
    }
  }
  return WriteCatalog(dir_, entries);
}

// ---------------------------------------------------------------------------
// Durability: open + checkpoint
// ---------------------------------------------------------------------------

Status Database::Open(const std::string& dir, const DurabilityOptions& opts,
                      std::unique_ptr<Database>* out) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create database directory: " + dir);
  }
  auto db = std::unique_ptr<Database>(new Database());
  db->dir_ = dir;
  db->durability_ = opts;

  // Health + events first: every subsystem constructed below may
  // register a heartbeat or emit a lifecycle event.
  db->health_.set_default_deadlines(opts.health_slow_ms,
                                    opts.health_stall_ms);
  db->events_.Configure(
      dir + "/events.log", opts.event_log_max_bytes,
      db->metrics_.GetCounter("lstore_events_total",
                              "Structured engine events emitted"),
      opts.event_ring_capacity);
  db->watchdog_->set_dump_dir(dir);

  // Size the shared scan pool before anything can lazily build it
  // (first-configuration-wins; see ThreadPool::ConfigureShared).
  if (opts.scan_threads != 0) {
    ThreadPool::ConfigureShared(opts.scan_threads);
  }

  // Buffer-managed base storage: a byte budget (option, or the
  // LSTORE_BUFFER_POOL_BYTES test knob) turns on demand paging of base
  // segments; 0 keeps them fully resident exactly as before. The pool
  // must exist before any table recovers so checkpoints can restore
  // segment references lazily.
  uint64_t pool_budget = opts.buffer_pool_bytes != 0
                             ? opts.buffer_pool_bytes
                             : BufferPool::EnvBudgetBytes();
  if (pool_budget > 0) {
    db->buffer_pool_ = std::make_unique<BufferPool>(pool_budget);
    db->buffer_pool_->set_event_log(&db->events_);
  }

  // Log archiving: the manager exists (and its directory is swept of
  // stale temp files) before the first checkpoint can truncate.
  if (opts.archive_enabled) {
    db->archive_ = std::make_unique<ArchiveManager>(dir, opts);
    db->archive_->set_metrics(&db->metrics_);
    db->archive_->set_event_log(&db->events_);
    LSTORE_RETURN_IF_ERROR(db->archive_->EnsureDir());
  }

  std::vector<CatalogEntry> catalog;
  bool catalog_exists = false;
  LSTORE_RETURN_IF_ERROR(ReadCatalog(dir, &catalog, &catalog_exists));

  Manifest manifest;
  bool manifest_exists = false;
  LSTORE_RETURN_IF_ERROR(ReadManifest(dir, &manifest, &manifest_exists));

  // Cross-table outcomes first: a commit record here commits the
  // transaction on EVERY participant; its absence (including a torn
  // final record) aborts it on every participant. Every table below
  // recovers against this one map, so no crash can split a
  // cross-table transaction.
  const std::string commit_log_path = dir + "/" + kCommitLogFile;
  std::unordered_map<TxnId, Timestamp> db_commits;
  db->commit_log_ = std::make_unique<CommitLog>();
  db->commit_log_->set_sync_counter(opts.sync_counter);
  {
    FramedLogMetrics clm;
    clm.appends = db->metrics_.GetCounter("lstore_commit_log_appends_total",
                                          "Commit-log records appended");
    clm.append_bytes =
        db->metrics_.GetCounter("lstore_commit_log_append_bytes_total",
                                "Commit-log framed bytes appended");
    clm.fsyncs = db->metrics_.GetCounter("lstore_commit_log_fsyncs_total",
                                         "Commit-log commit-path fsyncs");
    clm.append_ns = db->metrics_.GetHistogram(
        "lstore_commit_log_append_ns", "Commit-log append latency (ns)");
    clm.flush_ns = db->metrics_.GetHistogram(
        "lstore_commit_log_flush_ns", "Commit-log flush latency (ns)");
    db->commit_log_->set_metrics(clm);
  }
  LSTORE_RETURN_IF_ERROR(db->commit_log_->Open(
      commit_log_path, /*truncate=*/false,
      [&db_commits](const CommitLogRecord& rec, uint64_t) {
        // A later abort marker is authoritative: it is only written
        // when the commit record's own flush failed (the client saw
        // the abort). Txn ids are never reused.
        if (rec.aborted) {
          db_commits.erase(rec.txn_id);
        } else {
          db_commits[rec.txn_id] = rec.commit_time;
        }
      }));
  db->group_commit_ = std::make_unique<GroupCommitQueue>(
      db->commit_log_.get(), opts.group_commit_window_us, opts.sync_commit,
      &db->metrics_);
  db->group_commit_->RegisterHeartbeat(&db->health_);

  for (const CatalogEntry& ce : catalog) {
    TableConfig cfg = ce.config;
    cfg.enable_logging = true;
    cfg.log_path = dir + "/" + ce.name + ".log";
    cfg.sync_commit = opts.sync_commit;
    cfg.sync_counter = opts.sync_counter;
    Table* t = nullptr;
    LSTORE_RETURN_IF_ERROR(
        db->CreateTableInternal(ce.name, Schema(ce.columns), cfg, &t));

    const ManifestEntry* me = nullptr;
    for (const ManifestEntry& e : manifest.entries) {
      if (e.table == ce.name) me = &e;
    }
    if (me != nullptr) {
      LSTORE_RETURN_IF_ERROR(t->RecoverDurable(dir + "/" + me->file,
                                               me->log_watermark,
                                               me->file_checksum, &db_commits));
    } else {
      // Created after the last checkpoint: the log alone carries it.
      LSTORE_RETURN_IF_ERROR(t->RecoverDurable("", 0, 0, &db_commits));
    }
    // Secondary indexes: union of the catalog (kept current by
    // Database::CreateSecondaryIndex) and the manifest (covers
    // indexes created directly on the Table before a checkpoint).
    std::vector<ColumnId> secs = ce.secondary_columns;
    if (me != nullptr) {
      secs.insert(secs.end(), me->secondary_columns.begin(),
                  me->secondary_columns.end());
    }
    std::sort(secs.begin(), secs.end());
    secs.erase(std::unique(secs.begin(), secs.end()), secs.end());
    for (ColumnId col : secs) t->CreateSecondaryIndex(col);
  }

  // Resume the clock beyond every cross-table commit even when no
  // table replayed it (e.g. all tables dropped): a fresh transaction
  // id must never collide with a retained commit-log record.
  Timestamp max_commit = 0;
  for (const auto& [txn, ct] : db_commits) {
    (void)txn;
    if (ct > max_commit) max_commit = ct;
  }
  if (max_commit > 0) db->txn_manager_.clock().AdvanceTo(max_commit + 1);

  db->checkpoint_manager_ =
      std::make_unique<CheckpointManager>(db.get(), dir, opts);
  if (manifest_exists) {
    db->checkpoint_manager_->SetRecoveredManifest(manifest);
  }
  db->checkpoint_manager_->Start();
  if (opts.metrics_report_interval_ms > 0) {
    Database* raw = db.get();
    db->reporter_ = std::make_unique<StatsReporter>(
        dir + "/metrics.log", opts.metrics_report_interval_ms,
        [raw] { return raw->Metrics(); }, db->health_.Register("reporter"));
  }
  if (kTraceEnabled && opts.slow_op_threshold_us > 0) {
    // Same directory (and rotation idiom) as metrics.log; the counter
    // makes the dumps themselves observable.
    db->slow_op_log_ = std::make_unique<SlowOpLog>(
        dir + "/slowops.log", opts.slow_op_threshold_us,
        db->metrics_.GetCounter(
            "lstore_server_slow_ops_total",
            "Traced requests that exceeded slow_op_threshold_us"),
        opts.slow_op_log_max_bytes);
  }
  db->events_.Emit(EventSeverity::kInfo, "db", "open",
                   "\"tables\":" + std::to_string(catalog.size()));
  db->watchdog_->Start(opts.watchdog_interval_ms);
  *out = std::move(db);
  return Status::OK();
}

std::string Database::DumpTrace() const {
  return FlightRecorder::Instance().RenderChromeTrace();
}

Status Database::Checkpoint() {
  if (!durable()) {
    return Status::NotSupported("in-memory database has no checkpoint");
  }
  return checkpoint_manager_->RunCheckpoint();
}

// ---------------------------------------------------------------------------
// Cross-table transactions
// ---------------------------------------------------------------------------

Txn Database::Begin(IsolationLevel iso) {
  return Txn(this, txn_manager_.Begin(iso));
}

Status Database::CommitTxn(Transaction* txn) {
  // Snapshot the table list (tables are not dropped mid-transaction);
  // the pipeline filters the actual participants from the read and
  // write sets.
  std::vector<Table*> tables;
  {
    SpinGuard g(latch_);
    for (auto& e : tables_) tables.push_back(e.table.get());
  }
  return CommitAcrossTables(txn_manager_, txn, tables, group_commit_.get());
}

void Database::AbortTxn(Transaction* txn) {
  std::vector<Table*> tables;
  {
    SpinGuard g(latch_);
    for (auto& e : tables_) tables.push_back(e.table.get());
  }
  AbortAcrossTables(txn_manager_, txn, tables);
}

}  // namespace lstore
