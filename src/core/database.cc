#include "core/database.h"

#include <algorithm>

namespace lstore {

Status Database::CreateTable(const std::string& name, Schema schema,
                             TableConfig config) {
  SpinGuard g(latch_);
  for (const auto& e : tables_) {
    if (e.name == name) return Status::AlreadyExists("table exists");
  }
  tables_.push_back(Entry{
      name, std::make_unique<Table>(name, std::move(schema),
                                    std::move(config), &txn_manager_)});
  return Status::OK();
}

Table* Database::GetTable(const std::string& name) {
  SpinGuard g(latch_);
  for (auto& e : tables_) {
    if (e.name == name) return e.table.get();
  }
  return nullptr;
}

Status Database::DropTable(const std::string& name) {
  SpinGuard g(latch_);
  auto it = std::find_if(tables_.begin(), tables_.end(),
                         [&](const Entry& e) { return e.name == name; });
  if (it == tables_.end()) return Status::NotFound("no such table");
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  SpinGuard g(latch_);
  std::vector<std::string> names;
  for (const auto& e : tables_) names.push_back(e.name);
  return names;
}

Transaction Database::Begin(IsolationLevel iso) {
  return txn_manager_.Begin(iso);
}

Status Database::Commit(Transaction* txn) {
  if (txn->finished()) return Status::InvalidArgument("already finished");
  // Snapshot the table list (tables are not dropped mid-transaction).
  std::vector<Table*> tables;
  {
    SpinGuard g(latch_);
    for (auto& e : tables_) tables.push_back(e.table.get());
  }
  Timestamp commit_time = txn_manager_.EnterPreCommit(txn);
  // Validate every table's share of the readset.
  for (Table* t : tables) {
    Status s = t->ValidateReads(txn, commit_time);
    if (!s.ok()) {
      Abort(txn);
      return s;
    }
  }
  // Commit records in every participating log.
  for (Table* t : tables) {
    Status s = t->WriteCommitRecord(txn, commit_time);
    if (!s.ok()) {
      Abort(txn);
      return s;
    }
  }
  // Single atomic commit point for all tables: the shared manager.
  txn_manager_.MarkCommitted(txn);
  for (Table* t : tables) t->StampWrites(txn, commit_time);
  txn_manager_.Retire(txn->id());
  txn->set_finished();
  return Status::OK();
}

void Database::Abort(Transaction* txn) {
  if (txn->finished()) return;
  std::vector<Table*> tables;
  {
    SpinGuard g(latch_);
    for (auto& e : tables_) tables.push_back(e.table.get());
  }
  txn_manager_.MarkAborted(txn);
  for (Table* t : tables) t->StampWrites(txn, kAbortedStamp);
  txn_manager_.Retire(txn->id());
  txn->set_finished();
}

}  // namespace lstore
