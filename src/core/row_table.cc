#include "core/row_table.h"

#include <thread>

#include "common/bitutil.h"

namespace lstore {

namespace {
/// Backptr-field flag marking an intermediate same-transaction version
/// (the row-layout analogue of kSupersededFlag).
constexpr Value kRowSupersededBit = 1ull << 62;
}  // namespace

RowTable::RowRange::RowRange(uint32_t range_size, uint32_t ncols)
    : stride(ncols + 2),
      base(std::make_unique<std::atomic<Value>[]>(
          static_cast<size_t>(range_size) * ncols)),
      base_start(std::make_unique<std::atomic<Value>[]>(range_size)),
      indirection(std::make_unique<std::atomic<uint64_t>[]>(range_size)) {
  for (size_t i = 0; i < static_cast<size_t>(range_size) * ncols; ++i) {
    base[i].store(kNull, std::memory_order_relaxed);
  }
  for (uint32_t i = 0; i < range_size; ++i) {
    base_start[i].store(kNull, std::memory_order_relaxed);
    indirection[i].store(0, std::memory_order_relaxed);
  }
}

RowTable::RowRange::~RowRange() {
  auto* dir = chunks.load(std::memory_order_relaxed);
  if (dir == nullptr) return;
  for (uint32_t i = 0; i < kMaxChunks; ++i) {
    delete[] dir[i].load(std::memory_order_relaxed);
  }
}

std::atomic<Value>* RowTable::RowRange::VersionSlot(uint32_t seq,
                                                    uint32_t field) {
  uint32_t idx = seq - 1;
  size_t chunk = idx / kChunkRows;
  size_t off = (idx % kChunkRows) * stride + field;
  // Non-null for every published seq: Reserve() installs the directory
  // and chunk before the version becomes reachable.
  auto* dir = chunks.load(std::memory_order_acquire);
  return &dir[chunk].load(std::memory_order_acquire)[off];
}

const std::atomic<Value>* RowTable::RowRange::VersionSlot(
    uint32_t seq, uint32_t field) const {
  uint32_t idx = seq - 1;
  size_t chunk = idx / kChunkRows;
  size_t off = (idx % kChunkRows) * stride + field;
  auto* dir = chunks.load(std::memory_order_acquire);
  return &dir[chunk].load(std::memory_order_acquire)[off];
}

uint32_t RowTable::RowRange::Reserve() {
  uint32_t seq = next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  size_t chunk = (seq - 1) / kChunkRows;
  if (chunk >= kMaxChunks) return 0;  // version space exhausted
  // Lazily install the directory, then the chunk. Each reserver
  // publishes its own chunk; versions are only reachable once their
  // writer published the start time, which happens after this
  // returns, so readers never see a missing directory or chunk.
  auto* dir = chunks.load(std::memory_order_acquire);
  if (dir == nullptr) {
    SpinGuard g(grow_latch);
    dir = chunks.load(std::memory_order_relaxed);
    if (dir == nullptr) {
      chunk_store =
          std::make_unique<std::atomic<std::atomic<Value>*>[]>(kMaxChunks);
      for (uint32_t i = 0; i < kMaxChunks; ++i) {
        chunk_store[i].store(nullptr, std::memory_order_relaxed);
      }
      dir = chunk_store.get();
      chunks.store(dir, std::memory_order_release);
    }
  }
  if (dir[chunk].load(std::memory_order_acquire) == nullptr) {
    SpinGuard g(grow_latch);
    if (dir[chunk].load(std::memory_order_relaxed) == nullptr) {
      auto* fresh = new std::atomic<Value>[static_cast<size_t>(kChunkRows) *
                                           stride];
      for (size_t i = 0; i < static_cast<size_t>(kChunkRows) * stride; ++i) {
        fresh[i].store(kNull, std::memory_order_relaxed);
      }
      dir[chunk].store(fresh, std::memory_order_release);
    }
  }
  return seq;
}

RowTable::RowTable(Schema schema, TableConfig config,
                   TransactionManager* txn_manager)
    : schema_(std::move(schema)),
      config_(config),
      ranges_(std::make_unique<std::atomic<RowRange*>[]>(kMaxRanges)) {
  for (uint64_t i = 0; i < kMaxRanges; ++i) {
    ranges_[i].store(nullptr, std::memory_order_relaxed);
  }
  if (txn_manager != nullptr) {
    txn_manager_ = txn_manager;
  } else {
    owned_txn_manager_ = std::make_unique<TransactionManager>();
    txn_manager_ = owned_txn_manager_.get();
  }
}

RowTable::~RowTable() {
  for (uint64_t i = 0; i < kMaxRanges; ++i) {
    delete ranges_[i].load(std::memory_order_relaxed);
  }
}

RowTable::RowRange* RowTable::GetRange(uint64_t id) const {
  if (id >= kMaxRanges) return nullptr;
  return ranges_[id].load(std::memory_order_acquire);
}

RowTable::RowRange* RowTable::EnsureRange(uint64_t id) {
  RowRange* r = GetRange(id);
  if (r != nullptr) return r;
  SpinGuard g(ranges_latch_);
  r = ranges_[id].load(std::memory_order_acquire);
  if (r == nullptr) {
    r = new RowRange(config_.range_size, schema_.num_columns());
    ranges_[id].store(r, std::memory_order_release);
    uint64_t n = num_ranges_.load(std::memory_order_relaxed);
    while (n < id + 1 && !num_ranges_.compare_exchange_weak(
                             n, id + 1, std::memory_order_acq_rel)) {
    }
  }
  return r;
}

Txn RowTable::Begin(IsolationLevel iso) {
  return Txn(this, txn_manager_->Begin(iso));
}

Status RowTable::CommitTxn(Transaction* txn) {
  if (txn->finished()) return Status::InvalidArgument("finished");
  Timestamp commit_time = txn_manager_->EnterPreCommit(txn);
  txn_manager_->MarkCommitted(txn);
  for (const WriteEntry& w : txn->writeset()) {
    RowRange* r = GetRange(w.range_id);
    if (r == nullptr) continue;
    std::atomic<Value>* sref = w.is_insert ? &r->base_start[w.base_slot]
                                           : r->VersionSlot(w.seq, 0);
    Value expected = txn->id();
    sref->compare_exchange_strong(expected, commit_time,
                                  std::memory_order_acq_rel);
  }
  txn_manager_->Retire(txn->id());
  txn->set_finished();
  return Status::OK();
}

void RowTable::AbortTxn(Transaction* txn) {
  if (txn->finished()) return;
  txn_manager_->MarkAborted(txn);
  for (const WriteEntry& w : txn->writeset()) {
    RowRange* r = GetRange(w.range_id);
    if (r == nullptr) continue;
    std::atomic<Value>* sref = w.is_insert ? &r->base_start[w.base_slot]
                                           : r->VersionSlot(w.seq, 0);
    Value expected = txn->id();
    sref->compare_exchange_strong(expected, kAbortedStamp,
                                  std::memory_order_acq_rel);
    if (w.is_insert) primary_.Erase(w.inserted_key);
  }
  txn_manager_->Retire(txn->id());
  txn->set_finished();
}

Status RowTable::Insert(Transaction* txn, const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  uint64_t rid = next_row_.fetch_add(1, std::memory_order_relaxed);
  RowRange* r = EnsureRange(rid / config_.range_size);
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);
  uint32_t cur = r->occupied.load(std::memory_order_relaxed);
  while (cur < slot + 1 && !r->occupied.compare_exchange_weak(
                               cur, slot + 1, std::memory_order_acq_rel)) {
  }
  if (!primary_.Insert(row[0], rid)) {
    r->base_start[slot].store(kAbortedStamp, std::memory_order_release);
    return Status::AlreadyExists("duplicate key");
  }
  const uint32_t ncols = schema_.num_columns();
  for (ColumnId c = 0; c < ncols; ++c) {
    r->base[static_cast<size_t>(slot) * ncols + c].store(
        row[c], std::memory_order_relaxed);
  }
  r->base_start[slot].store(txn->id(), std::memory_order_release);
  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot, 0,
                                       /*is_insert=*/true, row[0]});
  return Status::OK();
}

bool RowTable::VisibleRaw(std::atomic<Value>* sref, Value& raw,
                          Timestamp as_of, Transaction* txn) const {
  for (;;) {
    if (raw == kNull || IsAbortedStamp(raw)) return false;
    if (!IsTxnId(raw)) return raw < as_of;
    if (txn != nullptr && raw == txn->id()) return true;
    TransactionManager::StateView view = txn_manager_->GetState(raw);
    if (!view.found) {
      Value reread = sref->load(std::memory_order_acquire);
      if (reread == raw) {
        std::this_thread::yield();
        continue;
      }
      raw = reread;
      continue;
    }
    if (view.state == TxnState::kCommitted) {
      Value expected = raw;
      sref->compare_exchange_strong(expected, view.commit,
                                    std::memory_order_acq_rel);
      raw = view.commit;
      return raw < as_of;
    }
    if (view.state == TxnState::kAborted) {
      Value expected = raw;
      sref->compare_exchange_strong(expected, kAbortedStamp,
                                    std::memory_order_acq_rel);
      return false;
    }
    if (view.state == TxnState::kPreCommit && as_of != kMaxTimestamp &&
        (view.commit == 0 || view.commit < as_of)) {
      // Pre-commit writer inside this snapshot: wait for its outcome
      // so the snapshot stays internally consistent.
      std::this_thread::yield();
      continue;
    }
    return false;
  }
}

Status RowTable::ResolveRow(RowRange& r, uint32_t slot, Timestamp as_of,
                            Transaction* txn, ColumnMask mask,
                            std::vector<Value>* out) const {
  const uint32_t ncols = schema_.num_columns();
  uint64_t iv = r.indirection[slot].load(std::memory_order_acquire);
  uint32_t seq = IndirSeq(iv);
  // Walk the (short) version chain: each tail version is complete.
  while (seq != 0) {
    std::atomic<Value>* sref = r.VersionSlot(seq, 0);
    Value raw = sref->load(std::memory_order_acquire);
    Value bp = r.VersionSlot(seq, 1)->load(std::memory_order_acquire);
    bool superseded = (bp & kRowSupersededBit) != 0;
    if (!superseded && VisibleRaw(sref, raw, as_of, txn)) {
      // Delete marker: the key column of a delete version is ∅.
      if (r.VersionSlot(seq, 2)->load(std::memory_order_acquire) == kNull) {
        return Status::NotFound("deleted");
      }
      for (BitIter it(mask); it; ++it) {
        (*out)[*it] =
            r.VersionSlot(seq, 2 + static_cast<uint32_t>(*it))
                ->load(std::memory_order_acquire);
      }
      return Status::OK();
    }
    seq = static_cast<uint32_t>(bp & kMaxTailSeq);
  }
  // Base row.
  std::atomic<Value>* sref = &r.base_start[slot];
  Value raw = sref->load(std::memory_order_acquire);
  if (!VisibleRaw(sref, raw, as_of, txn)) {
    return Status::NotFound("not visible");
  }
  for (BitIter it(mask); it; ++it) {
    (*out)[*it] = r.base[static_cast<size_t>(slot) * ncols + *it].load(
        std::memory_order_relaxed);
  }
  return Status::OK();
}

Status RowTable::Update(Transaction* txn, Value key, ColumnMask mask,
                        const std::vector<Value>& row) {
  if (mask == 0 || (mask & 1ull) != 0) {
    return Status::InvalidArgument("bad mask");
  }
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  RowRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);
  const uint32_t ncols = schema_.num_columns();

  auto& ind = r->indirection[slot];
  uint64_t iv = ind.load(std::memory_order_acquire);
  for (;;) {
    if (IndirLatched(iv)) return Status::Aborted("write-write conflict");
    if (ind.compare_exchange_weak(iv, iv | kIndirLatchBit,
                                  std::memory_order_acq_rel)) {
      break;
    }
  }
  uint32_t prev_seq = IndirSeq(iv);
  Value latest_raw = prev_seq != 0
                         ? r->VersionSlot(prev_seq, 0)->load(
                               std::memory_order_acquire)
                         : r->base_start[slot].load(std::memory_order_acquire);
  if (IsTxnId(latest_raw) && latest_raw != txn->id()) {
    TransactionManager::StateView view = txn_manager_->GetState(latest_raw);
    if (view.found && (view.state == TxnState::kActive ||
                       view.state == TxnState::kPreCommit)) {
      ind.store(iv, std::memory_order_release);
      return Status::Aborted("write-write conflict");
    }
  }

  // Same-transaction stacking: the previous own version is fully
  // covered by the new complete row; mark it superseded so readers
  // with a stale chain head skip it post-commit (Section 3.1).
  if (prev_seq != 0 && latest_raw == txn->id()) {
    std::atomic<Value>* bp = r->VersionSlot(prev_seq, 1);
    bp->fetch_or(kRowSupersededBit, std::memory_order_release);
  }

  // Materialize the complete new row (current values + changes).
  std::vector<Value> full(ncols, kNull);
  {
    // Read the newest committed (or own) values.
    Status s =
        ResolveRow(*r, slot, kMaxTimestamp, txn, schema_.AllColumns(), &full);
    if (!s.ok()) {
      ind.store(iv, std::memory_order_release);
      return s;
    }
  }
  for (BitIter it(mask); it; ++it) full[*it] = row[*it];

  uint32_t seq = r->Reserve();
  if (seq == 0) {
    ind.store(iv, std::memory_order_release);
    return Status::Busy("version space exhausted for range");
  }
  for (ColumnId c = 0; c < ncols; ++c) {
    r->VersionSlot(seq, 2 + c)->store(full[c], std::memory_order_relaxed);
  }
  r->VersionSlot(seq, 1)->store(prev_seq, std::memory_order_release);
  r->VersionSlot(seq, 0)->store(txn->id(), std::memory_order_release);
  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot, seq,
                                       /*is_insert=*/false, 0});
  ind.store(seq, std::memory_order_release);
  return Status::OK();
}

Status RowTable::Delete(Transaction* txn, Value key) {
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  RowRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  uint32_t slot = static_cast<uint32_t>(rid % config_.range_size);
  const uint32_t ncols = schema_.num_columns();

  auto& ind = r->indirection[slot];
  uint64_t iv = ind.load(std::memory_order_acquire);
  for (;;) {
    if (IndirLatched(iv)) return Status::Aborted("write-write conflict");
    if (ind.compare_exchange_weak(iv, iv | kIndirLatchBit,
                                  std::memory_order_acq_rel)) {
      break;
    }
  }
  uint32_t prev_seq = IndirSeq(iv);
  Value latest_raw = prev_seq != 0
                         ? r->VersionSlot(prev_seq, 0)->load(
                               std::memory_order_acquire)
                         : r->base_start[slot].load(std::memory_order_acquire);
  if (IsTxnId(latest_raw) && latest_raw != txn->id()) {
    TransactionManager::StateView view = txn_manager_->GetState(latest_raw);
    if (view.found && (view.state == TxnState::kActive ||
                       view.state == TxnState::kPreCommit)) {
      ind.store(iv, std::memory_order_release);
      return Status::Aborted("write-write conflict");
    }
  }
  // Refuse double-delete.
  {
    std::vector<Value> probe(ncols, kNull);
    Status s = ResolveRow(*r, slot, kMaxTimestamp, txn, 1ull, &probe);
    if (!s.ok()) {
      ind.store(iv, std::memory_order_release);
      return s;
    }
  }
  if (prev_seq != 0 && latest_raw == txn->id()) {
    r->VersionSlot(prev_seq, 1)->fetch_or(kRowSupersededBit,
                                          std::memory_order_release);
  }
  uint32_t seq = r->Reserve();
  if (seq == 0) {
    ind.store(iv, std::memory_order_release);
    return Status::Busy("version space exhausted for range");
  }
  for (ColumnId c = 0; c < ncols; ++c) {
    r->VersionSlot(seq, 2 + c)->store(kNull, std::memory_order_relaxed);
  }
  r->VersionSlot(seq, 1)->store(prev_seq, std::memory_order_release);
  r->VersionSlot(seq, 0)->store(txn->id(), std::memory_order_release);
  txn->writeset().push_back(WriteEntry{rid / config_.range_size, slot, seq,
                                       /*is_insert=*/false, 0});
  ind.store(seq, std::memory_order_release);
  return Status::OK();
}

Status RowTable::Read(Transaction* txn, Value key, ColumnMask mask,
                      std::vector<Value>* out) {
  out->assign(schema_.num_columns(), kNull);
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  RowRange* r = GetRange(rid / config_.range_size);
  if (r == nullptr) return Status::NotFound("no range");
  Timestamp as_of = txn->isolation() == IsolationLevel::kReadCommitted
                        ? kMaxTimestamp
                        : txn->begin_time();
  return ResolveRow(*r, static_cast<uint32_t>(rid % config_.range_size),
                    as_of, txn, mask, out);
}

Status RowTable::SumColumn(ColumnId col, Timestamp as_of,
                           uint64_t* sum) const {
  const uint32_t ncols = schema_.num_columns();
  uint64_t acc = 0;
  std::vector<Value> tmp(ncols, kNull);
  uint64_t nranges = num_ranges_.load(std::memory_order_acquire);
  for (uint64_t ri = 0; ri < nranges; ++ri) {
    RowRange* r = GetRange(ri);
    if (r == nullptr) continue;
    uint32_t occ = r->occupied.load(std::memory_order_acquire);
    for (uint32_t slot = 0; slot < occ; ++slot) {
      uint64_t iv = r->indirection[slot].load(std::memory_order_acquire);
      if (IndirSeq(iv) == 0) {
        // Fast path: never updated; row-major base access.
        std::atomic<Value>* sref = &r->base_start[slot];
        Value raw = sref->load(std::memory_order_acquire);
        if (VisibleRaw(sref, raw, as_of, nullptr)) {
          acc += r->base[static_cast<size_t>(slot) * ncols + col].load(
              std::memory_order_relaxed);
        }
        continue;
      }
      tmp[col] = kNull;
      Status s = ResolveRow(*r, slot, as_of, nullptr, 1ull << col, &tmp);
      if (s.ok() && tmp[col] != kNull) acc += tmp[col];
    }
  }
  *sum = acc;
  return Status::OK();
}

}  // namespace lstore
