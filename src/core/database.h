// Database: a collection of L-Store tables sharing one transaction
// manager and logical clock, giving multi-statement transactions that
// span tables (the paper's transaction layer operates above the
// storage layer; Section 3: "we support multi-statement transactions
// through L-Store's transaction layer").
//
// A database opened on a directory is *durable* (Section 5.1.3):
// every table gets a redo log under the directory, a database-level
// COMMIT_LOG is the single atomic commit point for cross-table
// transactions (per-table logs carry only their payloads), a
// group-commit queue batches the commit fsyncs of concurrent
// committers, `Checkpoint()` writes lineage-consistent snapshots and
// truncates the logs (including the commit log's covered prefix), and
// `Open()` performs full restart recovery (catalog -> commit log ->
// checkpoints -> log-tail replay -> index/Indirection rebuild).

#ifndef LSTORE_CORE_DATABASE_H_
#define LSTORE_CORE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/segment_store.h"
#include "common/config.h"
#include "common/latch.h"
#include "common/status.h"
#include "core/table.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "txn/txn.h"

namespace lstore {

class ArchiveManager;
class CheckpointManager;
class CommitLog;
class GroupCommitQueue;
class SlowOpLog;
class StatsReporter;

/// A point to restore to (Database::RestoreToPoint): either an
/// inclusive commit time, or the LSN of a cross-table commit-log
/// record (resolved to that record's commit time).
struct RestorePoint {
  Timestamp commit_time = 0;
  uint64_t commit_lsn = 0;
  static RestorePoint AtTime(Timestamp t) {
    RestorePoint p;
    p.commit_time = t;
    return p;
  }
  static RestorePoint AtCommitLsn(uint64_t lsn) {
    RestorePoint p;
    p.commit_lsn = lsn;
    return p;
  }
};

class Database : public TxnContext {
 public:
  /// In-memory database (no durability).
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Open (or create) a durable database rooted at directory `dir`.
  /// Recovers every cataloged table from its latest checkpoint plus
  /// the redo-log tail; a corrupt manifest or checkpoint fails with a
  /// clean Corruption status. Background checkpointing starts when
  /// `opts` configures a trigger.
  static Status Open(const std::string& dir, const DurabilityOptions& opts,
                     std::unique_ptr<Database>* out);
  static Status Open(const std::string& dir, std::unique_ptr<Database>* out) {
    return Open(dir, DurabilityOptions{}, out);
  }

  /// Take a lineage-consistent checkpoint of every table and truncate
  /// the redo logs to the recorded watermarks. NotSupported on an
  /// in-memory database.
  Status Checkpoint();

  /// Point-in-time recovery (requires a directory whose checkpoints
  /// ran with DurabilityOptions::archive_enabled): open `dir`
  /// read-only, load the newest checkpoint at or before the point,
  /// stitch archived + live log segments into one LSN-continuous
  /// stream per participant, replay the commit log into an outcome
  /// map truncated at the point, and replay each table against it —
  /// the result is an in-memory Database holding the exact
  /// cross-table-consistent committed state at the point (a
  /// transaction is present with ALL of its writes, on every
  /// participant, or none). The point is inclusive: commits with
  /// commit_time <= point are present. Fails with NotFound when the
  /// point precedes the archived history (retention evicted it) and
  /// with Corruption when a sealed segment is torn or a gap breaks
  /// the LSN stitch — never silently missing data. Scope: the restore
  /// covers the tables in the CURRENT catalog — DropTable permanently
  /// removes a table from history (its archived segments are
  /// reclaimed with it), and reusing a dropped table's name
  /// invalidates that name's pre-reuse history (those restores fail
  /// cleanly). `dir` must not have a writing Database attached.
  static Status RestoreToPoint(const std::string& dir,
                               const RestorePoint& point,
                               std::unique_ptr<Database>* out);

  bool durable() const { return !dir_.empty(); }
  const std::string& directory() const { return dir_; }
  CheckpointManager* checkpoint_manager() { return checkpoint_manager_.get(); }

  /// The database commit log — the single atomic commit point for
  /// cross-table transactions (null on an in-memory database).
  CommitLog* commit_log() { return commit_log_.get(); }
  /// The log archive (null unless DurabilityOptions::archive_enabled).
  ArchiveManager* archive_manager() { return archive_.get(); }
  /// The group-commit stage shared by every commit on this database
  /// (null on an in-memory database).
  GroupCommitQueue* group_commit() { return group_commit_.get(); }

  /// Create a table registered under `name`. Fails if the name exists.
  /// On a durable database, logging is forced on (log under the
  /// database directory) and the schema/config are persisted to the
  /// catalog so the table survives restarts even before its first
  /// checkpoint.
  Status CreateTable(const std::string& name, Schema schema,
                     TableConfig config);

  /// Lookup; nullptr if absent.
  Table* GetTable(const std::string& name);

  /// Drop a table (must not have in-flight transactions touching it).
  /// On a durable database also removes its log and catalog entry.
  Status DropTable(const std::string& name);

  /// Create a secondary index on `table`.`col`. On a durable database
  /// the index column is persisted to the catalog, so the index is
  /// rebuilt on every restart — unlike Table::CreateSecondaryIndex
  /// called directly, which only reaches the durable state at the
  /// next checkpoint.
  Status CreateSecondaryIndex(const std::string& table, ColumnId col);

  std::vector<std::string> TableNames() const;

  /// Begin an RAII transaction session valid across every table of
  /// this database: commit with txn.Commit(); a session destroyed
  /// while active aborts automatically. The commit runs the same
  /// pipeline as single-table sessions — validation against each
  /// participating table, one commit record per written log, and the
  /// state flip in the shared manager as the single atomic commit
  /// point for all of them.
  Txn Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);

  TransactionManager& txn_manager() { return txn_manager_; }

  /// A read snapshot covering every currently-committed transaction,
  /// WITHOUT advancing the logical clock — the right timestamp for
  /// read-only scans across tables (Query::AsOf).
  Timestamp Now() const { return txn_manager_.SnapshotNow(); }

  /// A ticking timestamp: advances the clock and returns a time newer
  /// than every previous event. Prefer Now() for read-only scans.
  Timestamp ReadTimestamp() { return txn_manager_.clock().Tick(); }

  /// The database-wide buffer pool for read-optimized base segments
  /// (nullptr when DurabilityOptions::buffer_pool_bytes — or the
  /// LSTORE_BUFFER_POOL_BYTES knob — is 0: fully resident).
  BufferPool* buffer_pool() { return buffer_pool_.get(); }

  /// Aggregate hit/miss/eviction/residency counters of the pool
  /// (all-zero when no pool is configured). Thin view over the pool's
  /// own counters; the same numbers appear as lstore_buffer_* gauges
  /// in Metrics().
  BufferPoolStats buffer_stats() const {
    return buffer_pool_ != nullptr ? buffer_pool_->stats()
                                   : BufferPoolStats{};
  }

  /// The engine-wide metrics registry shared by every table of this
  /// database (src/obs/metrics.h).
  MetricsRegistry& metrics() { return metrics_; }

  /// One consistent snapshot of every engine metric: commit-stage and
  /// group-commit timings, redo/commit-log traffic, merge durations,
  /// buffer-pool and epoch levels, checkpoint/archive phases. Render
  /// with MetricsSnapshot::RenderPrometheus() / RenderJson().
  MetricsSnapshot Metrics() const { return metrics_.Snapshot(); }

  /// The flight recorder's current contents as Chrome trace-event JSON
  /// (chrome://tracing / Perfetto loadable): every span of every traced
  /// request still retained in the per-thread rings. Served over the
  /// wire as the TRACE op (`lstore_cli trace`). Under LSTORE_TRACING=
  /// OFF: a valid document with zero events.
  std::string DumpTrace() const;

  /// The slow-op log (src/obs/slow_op_log.h), or nullptr unless the
  /// database is durable, tracing is compiled in, and
  /// DurabilityOptions::slow_op_threshold_us > 0.
  SlowOpLog* slow_op_log() { return slow_op_log_.get(); }

  /// The heartbeat registry every background actor of this engine
  /// registers with (src/obs/health.h) — merge threads, the
  /// checkpointer, the group-commit leader, the stats reporter, and a
  /// co-resident Server's workers/readers.
  HealthRegistry& health() { return health_; }

  /// The structured event log (src/obs/event_log.h): in-memory ring
  /// always; plus <dir>/events.log JSON lines when durable.
  EventLog& event_log() { return events_; }

  /// The watchdog sweeping the health registry. Its background thread
  /// runs only on a durable database with watchdog_interval_ms > 0;
  /// Health() sweeps on demand either way.
  Watchdog* watchdog() { return watchdog_.get(); }

  /// One on-demand watchdog sweep plus the newest retained events:
  /// the typed report behind the HEALTH wire op / `lstore_cli status`.
  HealthReport Health();

 private:
  friend class CheckpointManager;

  /// Cross-table commit/abort via the unified pipeline (sessions call
  /// these through TxnContext).
  Status CommitTxn(Transaction* txn) override;
  void AbortTxn(Transaction* txn) override;

  /// Registered tables, in creation order (checkpoint + catalog use).
  std::vector<std::pair<std::string, Table*>> TableHandles() const;

  /// Rewrite the catalog from the current table set (atomic rename).
  Status PersistCatalog();
  /// Same, omitting `skip` (DropTable persists before erasing memory).
  Status PersistCatalogExcluding(const std::string& skip);

  Status CreateTableInternal(const std::string& name, Schema schema,
                             TableConfig config, Table** out);

  TransactionManager txn_manager_;
  mutable SpinLatch latch_;
  /// Engine-wide metrics registry. Declared before every subsystem
  /// that records into it (tables, logs, pipeline, checkpointing) so
  /// the handles they cache stay valid for their whole lifetime.
  MetricsRegistry metrics_;
  /// Health registry + event log: declared right after metrics_ (and
  /// before every subsystem) for the same reason — actors hold
  /// heartbeat handles and emit events for their whole lifetime. The
  /// watchdog itself only reads these members, but its thread is
  /// stopped FIRST in ~Database so no sweep races subsystem teardown.
  HealthRegistry health_;
  EventLog events_;
  std::unique_ptr<Watchdog> watchdog_;
  /// Serializes durable DDL (CreateTable/DropTable/CreateSecondaryIndex)
  /// against checkpoints: a checkpoint iterates raw Table pointers, so
  /// a concurrent drop must not destroy a table mid-capture. Ordering:
  /// ddl_mu_ before the checkpoint manager's internal mutexes.
  mutable std::mutex ddl_mu_;
  /// Buffer-managed base storage: one pool for the whole database,
  /// one swap store per table. Declared BEFORE tables_ so both
  /// outlive the tables whose destructors detach pages from the pool
  /// (and whose cold pages read from the stores).
  std::unique_ptr<BufferPool> buffer_pool_;
  std::unordered_map<std::string, std::unique_ptr<SegmentStore>>
      segment_stores_;

  struct Entry {
    std::string name;
    std::unique_ptr<Table> table;
  };
  std::vector<Entry> tables_;

  std::string dir_;  ///< empty = in-memory
  DurabilityOptions durability_;
  /// Log archiving / PITR (durable + archive_enabled only).
  std::unique_ptr<ArchiveManager> archive_;
  /// Cross-table commit point + shared fsync stage (durable only).
  std::unique_ptr<CommitLog> commit_log_;
  std::unique_ptr<GroupCommitQueue> group_commit_;
  // Declared last: destroyed (and therefore stopped) before tables_.
  std::unique_ptr<CheckpointManager> checkpoint_manager_;
  /// Slow-op dump sink (<dir>/slowops.log); created by Open when
  /// DurabilityOptions::slow_op_threshold_us > 0 and tracing is
  /// compiled in. Consumers (Server workers) hold the raw pointer only
  /// while the Database lives — same contract as the registry handles.
  std::unique_ptr<SlowOpLog> slow_op_log_;
  /// Last-seen FlightRecorder::dropped() value, so the registry
  /// collector can mirror the delta into the monotonic counter.
  std::atomic<uint64_t> trace_dropped_seen_{0};
  /// Background JSON-lines reporter (DurabilityOptions::
  /// metrics_report_interval_ms). Last: stopped before anything it
  /// samples is torn down (~Database also stops it explicitly).
  std::unique_ptr<StatsReporter> reporter_;
};

}  // namespace lstore

#endif  // LSTORE_CORE_DATABASE_H_
