// Database: a collection of L-Store tables sharing one transaction
// manager and logical clock, giving multi-statement transactions that
// span tables (the paper's transaction layer operates above the
// storage layer; Section 3: "we support multi-statement transactions
// through L-Store's transaction layer").

#ifndef LSTORE_CORE_DATABASE_H_
#define LSTORE_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "core/table.h"

namespace lstore {

class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a table registered under `name`. Fails if the name exists.
  Status CreateTable(const std::string& name, Schema schema,
                     TableConfig config);

  /// Lookup; nullptr if absent.
  Table* GetTable(const std::string& name);

  /// Drop a table (must not have in-flight transactions touching it).
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Begin a transaction valid across every table of this database.
  Transaction Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);

  /// Commit/abort a cross-table transaction. Every table the
  /// transaction wrote participates: validation runs against each
  /// table's data, and the state flip in the shared manager is the
  /// single atomic commit point for all of them.
  Status Commit(Transaction* txn);
  void Abort(Transaction* txn);

  TransactionManager& txn_manager() { return txn_manager_; }

  /// Current timestamp for snapshot scans across tables.
  Timestamp ReadTimestamp() { return txn_manager_.clock().Tick(); }

 private:
  TransactionManager txn_manager_;
  mutable SpinLatch latch_;
  struct Entry {
    std::string name;
    std::unique_ptr<Table> table;
  };
  std::vector<Entry> tables_;
};

}  // namespace lstore

#endif  // LSTORE_CORE_DATABASE_H_
