// Table schema: named 64-bit data columns; column 0 is the primary
// key by convention (the micro benchmark of Section 6 uses a 10-column
// schema with a single key).

#ifndef LSTORE_CORE_SCHEMA_H_
#define LSTORE_CORE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lstore {

class Schema {
 public:
  /// Unnamed columns: "c0" (key), "c1", ...
  explicit Schema(uint32_t num_columns) {
    for (uint32_t i = 0; i < num_columns; ++i) {
      names_.push_back("c" + std::to_string(i));
    }
  }
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {}

  uint32_t num_columns() const { return static_cast<uint32_t>(names_.size()); }
  const std::string& name(ColumnId c) const { return names_[c]; }

  /// Column id by name; returns num_columns() if absent.
  ColumnId Find(const std::string& name) const {
    for (ColumnId i = 0; i < num_columns(); ++i) {
      if (names_[i] == name) return i;
    }
    return num_columns();
  }

  /// Mask with every data column set.
  ColumnMask AllColumns() const {
    return num_columns() >= 56 ? kSchemaMaskBits
                               : ((1ull << num_columns()) - 1);
  }

 private:
  std::vector<std::string> names_;
};

}  // namespace lstore

#endif  // LSTORE_CORE_SCHEMA_H_
