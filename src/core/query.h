// Composable snapshot queries over one table (the real-time OLAP side
// of the paper, Section 6.2).
//
// A Query is built fluently and executed by a terminal:
//
//   uint64_t total = 0;
//   table.NewQuery()
//        .Range(0, table.num_rows())        // optional row interval
//        .Where(kStatus, 1)                 // equality / predicate filters
//        .AsOf(snapshot)                    // default: current snapshot
//        .Sum(kBalance, &total);            // terminal
//
// Terminals: Sum, Count, Visit (per-row callback), Keys (matching
// primary keys, sorted + deduplicated).
//
// Execution partitions the row interval along update-range boundaries
// and fans the partitions out on the shared scan pool (ThreadPool):
// update ranges are independent physical units (own base segments,
// own tail pages, own lineage), so partitions never share mutable
// state and a snapshot scan parallelizes embarrassingly. Within a
// partition the scan follows the merged fast path of Section 4.2 —
// predicates and projection are evaluated directly on the compressed
// base segments through monotone cursors (CompressedColumn::Cursor),
// falling back to the lineage chain walk only for slots whose merge
// horizon does not cover the snapshot.
//
// An equality filter on a column with a secondary index switches to a
// candidate-driven plan: index postings are re-validated against the
// snapshot, as Section 3.1 prescribes.

#ifndef LSTORE_CORE_QUERY_H_
#define LSTORE_CORE_QUERY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/table.h"

namespace lstore {

class Query {
 public:
  /// Row callback for Visit: `row` holds every projected column
  /// (others ∅). With more than one worker the callback runs
  /// concurrently from pool threads and must be thread-safe; row
  /// order is unspecified.
  using RowFn = std::function<void(Value key, const std::vector<Value>& row)>;
  using Predicate = std::function<bool(Value)>;

  /// Columns delivered to Visit callbacks (default: every column).
  Query& Project(ColumnMask mask) {
    project_ = mask;
    return *this;
  }

  /// Restrict to rows [first_row, first_row + row_count) in base-RID
  /// order (the "10% of the data" queries of Section 6.1).
  Query& Range(uint64_t first_row, uint64_t row_count) {
    first_row_ = first_row;
    row_count_ = row_count;
    return *this;
  }

  /// Keep rows whose visible `col` equals `v`. Uses the column's
  /// secondary index when one exists and the query spans the table.
  Query& Where(ColumnId col, Value v) {
    filters_.push_back(Filter{col, true, v, nullptr});
    return *this;
  }

  /// Keep rows whose visible `col` satisfies `pred`.
  Query& Where(ColumnId col, Predicate pred) {
    filters_.push_back(Filter{col, false, 0, std::move(pred)});
    return *this;
  }

  /// Evaluate against the snapshot at `ts` (time travel). Default:
  /// a non-ticking current snapshot (Table::Now()).
  Query& AsOf(Timestamp ts) {
    as_of_ = ts;
    return *this;
  }

  /// Maximum parallel executors: 1 = run on the calling thread only,
  /// 0 (default) = size automatically from the shared pool and the
  /// scan width.
  Query& Workers(uint32_t n) {
    workers_ = n;
    return *this;
  }

  // --- terminals -----------------------------------------------------------

  /// SUM of the visible values of `col` over every matching row
  /// (∅ contributes 0); `visible_rows` counts the matching rows.
  Status Sum(ColumnId col, uint64_t* sum,
             uint64_t* visible_rows = nullptr) const;

  /// Minimum / maximum visible value of `col` over every matching row
  /// (∅ values are skipped; *out = ∅ when no row contributes).
  /// Evaluated on the merged fast path through the same compressed-
  /// segment cursors as Sum.
  Status Min(ColumnId col, Value* out, uint64_t* visible_rows = nullptr) const;
  Status Max(ColumnId col, Value* out, uint64_t* visible_rows = nullptr) const;

  /// Number of matching rows.
  Status Count(uint64_t* count) const;

  /// Deliver every matching row.
  Status Visit(const RowFn& fn) const;

  /// Primary keys of matching rows, sorted and deduplicated.
  Status Keys(std::vector<Value>* keys) const;

 private:
  friend class Table;

  struct Filter {
    ColumnId col;
    bool is_equality;
    Value equals;
    Predicate pred;

    bool Matches(Value v) const { return is_equality ? v == equals : pred(v); }
  };

  explicit Query(const Table* table) : table_(table) {}

  /// Aggregate flavor of the shared execution core: Sum folds with +,
  /// Min/Max fold with the comparator (∅ is the fold identity).
  enum class AggKind { kSum, kMin, kMax };

  /// Fold one non-∅ value into the accumulator.
  void Accumulate(uint64_t* acc, Value v) const {
    switch (agg_kind_) {
      case AggKind::kSum: *acc += v; break;
      case AggKind::kMin:
        if (*acc == kNull || v < *acc) *acc = v;
        break;
      case AggKind::kMax:
        if (*acc == kNull || v > *acc) *acc = v;
        break;
    }
  }
  uint64_t AggIdentity() const {
    return agg_kind_ == AggKind::kSum ? 0 : kNull;
  }
  /// Merge a partition's partial accumulator into the global one.
  void MergeAccumulator(uint64_t* acc, uint64_t partial) const {
    if (agg_kind_ == AggKind::kSum) {
      *acc += partial;
    } else if (partial != kNull) {
      Accumulate(acc, partial);
    }
  }

  /// Shared execution core. `agg_col` != kNoAggregation accumulates
  /// into sum/rows without materializing rows; otherwise every
  /// matching row is delivered to `visit`.
  static constexpr ColumnId kNoAggregation = ~0u;
  Status Execute(ColumnId agg_col, const RowFn* visit, uint64_t* sum,
                 uint64_t* rows) const;

  /// Candidate-driven plan via the secondary index on `index_col`.
  Status ExecuteWithIndex(ColumnId index_col, ColumnMask needed,
                          Timestamp as_of, ColumnId agg_col, const RowFn* visit,
                          uint64_t* sum, uint64_t* rows) const;

  /// Scan slots [slot_begin, slot_end) of one update range.
  void ScanPartition(uint64_t range_id, uint32_t slot_begin, uint32_t slot_end,
                     ColumnMask needed, Timestamp as_of, ColumnId agg_col,
                     const RowFn* visit, uint64_t* sum, uint64_t* rows) const;

  const Table* table_;
  ColumnMask project_ = ~0ull;
  uint64_t first_row_ = 0;
  uint64_t row_count_ = ~0ull;
  Timestamp as_of_ = 0;  ///< 0 = Table::Now() at execution
  uint32_t workers_ = 0;
  AggKind agg_kind_ = AggKind::kSum;
  std::vector<Filter> filters_;
};

inline Query Table::NewQuery() const { return Query(this); }

}  // namespace lstore

#endif  // LSTORE_CORE_QUERY_H_
