// Historic compression (Section 4.3) and its driver,
// Table::RunHistoricCompression.
//
// Encoded layout per base slot (written in ascending slot order):
//   varint  slot
//   varint  version_count
//   delta   seq[count]           (ascending)
//   delta   start_time[count]
//   varint  schema_encoding[count]
//   varint  mask[count]
//   per column (ascending column id over the union of masks):
//     delta-encoded values of the versions materializing that column
//     (version inlining: "different versions are stored inline and
//      contiguously ... delta-compression is applied across different
//      versions").

#include "core/historic.h"

#include <algorithm>
#include <map>

#include "common/bitutil.h"
#include "core/table.h"
#include "obs/trace.h"
#include "storage/compression/varint.h"

namespace lstore {

// ---------------------------------------------------------------------------
// HistoricStore
// ---------------------------------------------------------------------------

void HistoricStore::EncodeSlot(uint32_t slot,
                               const std::vector<Version>& versions) {
  offsets_[slot] = blob_.size();
  PutVarint64(&blob_, slot);
  PutVarint64(&blob_, versions.size());
  // Seqs and start times: ascending, delta-friendly.
  uint64_t prev = 0;
  for (const Version& v : versions) {
    PutVarint64(&blob_, ZigzagEncode(static_cast<int64_t>(v.seq - prev)));
    prev = v.seq;
  }
  prev = 0;
  for (const Version& v : versions) {
    PutVarint64(&blob_,
                ZigzagEncode(static_cast<int64_t>(v.start_time - prev)));
    prev = v.start_time;
  }
  for (const Version& v : versions) PutVarint64(&blob_, v.schema_encoding);
  for (const Version& v : versions) PutVarint64(&blob_, v.mask);
  ColumnMask union_mask = 0;
  for (const Version& v : versions) union_mask |= v.mask;
  for (BitIter it(union_mask); it; ++it) {
    ColumnMask bit = 1ull << *it;
    uint64_t col_prev = 0;
    for (const Version& v : versions) {
      if ((v.mask & bit) == 0) continue;
      int vi = 0;
      for (BitIter b(v.mask); b; ++b, ++vi) {
        if (*b == *it) break;
      }
      Value val = v.values[vi];
      PutVarint64(&blob_,
                  ZigzagEncode(static_cast<int64_t>(val - col_prev)));
      col_prev = val;
    }
  }
  num_versions_ += versions.size();
}

HistoricStore* HistoricStore::Build(
    uint32_t boundary,
    const std::unordered_map<uint32_t, std::vector<Version>>& per_slot,
    const HistoricStore* previous, uint32_t num_columns) {
  auto* store = new HistoricStore();
  store->boundary_ = boundary;
  store->num_columns_ = num_columns;

  // Union: previous store contents + new versions, ordered by base RID
  // ("tail records are ordered based on the RIDs of their
  // corresponding base records", Section 2.1).
  std::map<uint32_t, std::vector<Version>> merged;
  if (previous != nullptr) {
    for (const auto& [slot, off] : previous->offsets_) {
      merged[slot] = previous->VersionsOf(slot);
    }
  }
  for (const auto& [slot, versions] : per_slot) {
    auto& dst = merged[slot];
    dst.insert(dst.end(), versions.begin(), versions.end());
  }
  for (auto& [slot, versions] : merged) {
    std::sort(versions.begin(), versions.end(),
              [](const Version& a, const Version& b) { return a.seq < b.seq; });
    store->EncodeSlot(slot, versions);
  }
  return store;
}

std::vector<HistoricStore::Version> HistoricStore::VersionsOf(
    uint32_t slot) const {
  std::vector<Version> out;
  auto it = offsets_.find(slot);
  if (it == offsets_.end()) return out;
  size_t pos = it->second;
  const char* data = blob_.data();
  size_t size = blob_.size();
  uint64_t stored_slot, count;
  if (!GetVarint64(data, size, &pos, &stored_slot)) return out;
  if (!GetVarint64(data, size, &pos, &count)) return out;
  out.resize(count);
  uint64_t prev = 0;
  for (auto& v : out) {
    uint64_t zz;
    if (!GetVarint64(data, size, &pos, &zz)) return {};
    prev += static_cast<uint64_t>(ZigzagDecode(zz));
    v.seq = static_cast<uint32_t>(prev);
  }
  prev = 0;
  for (auto& v : out) {
    uint64_t zz;
    if (!GetVarint64(data, size, &pos, &zz)) return {};
    prev += static_cast<uint64_t>(ZigzagDecode(zz));
    v.start_time = prev;
  }
  for (auto& v : out) {
    if (!GetVarint64(data, size, &pos, &v.schema_encoding)) return {};
  }
  for (auto& v : out) {
    if (!GetVarint64(data, size, &pos, &v.mask)) return {};
    v.values.assign(PopCount(v.mask), kNull);
  }
  ColumnMask union_mask = 0;
  for (const auto& v : out) union_mask |= v.mask;
  for (BitIter it(union_mask); it; ++it) {
    ColumnMask bit = 1ull << *it;
    uint64_t col_prev = 0;
    for (auto& v : out) {
      if ((v.mask & bit) == 0) continue;
      uint64_t zz;
      if (!GetVarint64(data, size, &pos, &zz)) return {};
      col_prev += static_cast<uint64_t>(ZigzagDecode(zz));
      int vi = 0;
      for (BitIter b(v.mask); b; ++b, ++vi) {
        if (*b == *it) break;
      }
      v.values[vi] = col_prev;
    }
  }
  return out;
}

std::vector<uint32_t> HistoricStore::Slots() const {
  std::vector<uint32_t> out;
  out.reserve(offsets_.size());
  for (const auto& [slot, off] : offsets_) out.push_back(slot);
  return out;
}

void HistoricStore::EncodeTo(std::string* out) const {
  PutVarint64(out, boundary_);
  PutVarint64(out, num_columns_);
  PutVarint64(out, num_versions_);
  PutVarint64(out, offsets_.size());
  for (const auto& [slot, off] : offsets_) {
    PutVarint64(out, slot);
    PutVarint64(out, off);
  }
  PutVarint64(out, blob_.size());
  out->append(blob_);
}

HistoricStore* HistoricStore::DecodeFrom(const char* data, size_t size) {
  auto store = std::unique_ptr<HistoricStore>(new HistoricStore());
  size_t pos = 0;
  uint64_t v;
  if (!GetVarint64(data, size, &pos, &v)) return nullptr;
  store->boundary_ = static_cast<uint32_t>(v);
  if (!GetVarint64(data, size, &pos, &v)) return nullptr;
  store->num_columns_ = static_cast<uint32_t>(v);
  if (!GetVarint64(data, size, &pos, &v)) return nullptr;
  store->num_versions_ = v;
  uint64_t count;
  if (!GetVarint64(data, size, &pos, &count)) return nullptr;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t slot, off;
    if (!GetVarint64(data, size, &pos, &slot)) return nullptr;
    if (!GetVarint64(data, size, &pos, &off)) return nullptr;
    store->offsets_[static_cast<uint32_t>(slot)] = off;
  }
  uint64_t blob_size;
  if (!GetVarint64(data, size, &pos, &blob_size)) return nullptr;
  if (blob_size > size - pos) return nullptr;  // overflow-safe bound
  store->blob_.assign(data + pos, blob_size);
  return store.release();
}

bool HistoricStore::ResolveColumn(uint32_t slot, uint32_t entry_seq,
                                  ColumnId col, Timestamp as_of, Value* out,
                                  bool* deleted) const {
  auto versions = VersionsOf(slot);
  if (deleted != nullptr) *deleted = false;
  bool first = true;
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (it->seq > entry_seq) continue;
    if (!(it->start_time < as_of)) continue;
    if (first) {
      first = false;
      if (IsDeleteRecord(it->schema_encoding)) {
        if (deleted != nullptr) *deleted = true;
        return false;
      }
    }
    if ((it->mask & (1ull << col)) != 0) {
      int vi = 0;
      for (BitIter b(it->mask); b; ++b, ++vi) {
        if (*b == static_cast<int>(col)) break;
      }
      *out = it->values[vi];
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Table::RunHistoricCompression (Section 4.3)
// ---------------------------------------------------------------------------

size_t Table::RunHistoricCompression(Range& r) {
  // Timed manually — early returns (nothing to compress) are not
  // samples in the duration histogram.
  uint64_t compress_t0 = kTraceEnabled ? NowNanos() : 0;
  SpinGuard g(r.merge_latch);
  uint32_t old_boundary = r.historic_boundary.load(std::memory_order_acquire);
  uint32_t tps = r.merged_tps.load(std::memory_order_acquire);
  if (tps < old_boundary) return 0;

  // Only versions outside every active snapshot may move: approximate
  // the oldest query snapshot by the oldest live transaction's begin
  // time (live entries include active scans' registering txns).
  Timestamp oldest = kMaxTimestamp;
  // A coarse, conservative bound: the current clock value. Readers
  // that started earlier hold epoch pins; since we only *move* (not
  // lose) versions and tail pages are reclaimed through the epoch
  // manager, using the clock is safe for data, and commit times above
  // the clock cannot exist.
  (void)oldest;

  uint32_t new_boundary = tps + 1;  // compress everything merged
  if (new_boundary <= old_boundary) return 0;

  // Collect versions [old_boundary, new_boundary).
  std::unordered_map<uint32_t, std::vector<HistoricStore::Version>> per_slot;
  size_t moved = 0;
  for (uint32_t seq = old_boundary; seq < new_boundary; ++seq) {
    Value raw = r.updates.Read(seq, kTailStartTime);
    if (raw == kNull || IsAbortedStamp(raw) || IsTxnId(raw)) {
      continue;  // tombstones are reclaimed here (Section 5.1.3)
    }
    HistoricStore::Version v;
    v.seq = seq;
    v.start_time = raw;
    v.schema_encoding = r.updates.Read(seq, kTailSchemaEncoding);
    v.mask = SchemaColumns(v.schema_encoding);
    for (BitIter it(v.mask); it; ++it) {
      v.values.push_back(
          r.updates.Read(seq, kTailMetaColumns + static_cast<uint32_t>(*it)));
    }
    uint32_t slot = static_cast<uint32_t>(r.updates.Read(seq, kTailBaseRid));
    per_slot[slot].push_back(std::move(v));
    ++moved;
  }

  HistoricStore* old_store = r.historic.load(std::memory_order_acquire);
  HistoricStore* fresh = HistoricStore::Build(
      new_boundary - 1, per_slot, old_store, schema_.num_columns());

  // Publish: store first, then the boundary, then reclaim the raw
  // tail pages once readers drain (page-directory pointer swap
  // analogue; Section 4.3 "the page directory is updated by swapping
  // the pointers").
  r.historic.store(fresh, std::memory_order_release);
  r.historic_boundary.store(new_boundary, std::memory_order_release);
  Range* rp = &r;
  epochs_.Retire([rp, new_boundary, old_store] {
    rp->updates.DropRecordsBelow(new_boundary);
    delete old_store;
  });

  stats_.historic_compressions.fetch_add(1, std::memory_order_relaxed);
  obs_.historic_versions->Add(moved);
  if (kTraceEnabled) {
    obs_.merge_historic_ns->Record(NowNanos() - compress_t0);
  }
  return moved;
}

}  // namespace lstore
