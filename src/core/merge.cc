// Merge implementation: Algorithm 1 of Section 4.1.1 plus the
// simplified insert-range merge of Section 3.2 and the background
// merge manager of Figure 5.

#include "core/merge.h"

#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitutil.h"
#include "core/historic.h"
#include "core/table.h"
#include "obs/health.h"
#include "obs/trace.h"

namespace lstore {

// ---------------------------------------------------------------------------
// MergeManager
// ---------------------------------------------------------------------------

MergeManager::MergeManager(Table* table) : table_(table) {}

MergeManager::~MergeManager() { Stop(); }

void MergeManager::Start() {
  std::lock_guard<std::mutex> g(mu_);
  if (running_) return;
  running_ = true;
  worker_ = std::thread([this] { Loop(); });
}

void MergeManager::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void MergeManager::Enqueue(uint64_t range_id) {
  {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(range_id);
  }
  cv_.notify_one();
}

void MergeManager::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && !busy_; });
}

void MergeManager::Loop() {
  // Busy-scoped heartbeat "merge:<table>": an idle merge thread parked
  // on cv_.wait is healthy by definition; only time spent inside a
  // claimed task counts against the slow/stall deadlines. Held as a
  // local shared_ptr so exiting the loop unregisters the actor.
  std::shared_ptr<Heartbeat> hb;
  if (table_->config().health != nullptr) {
    hb = table_->config().health->Register("merge:" + table_->name());
  }
  for (;;) {
    uint64_t range_id;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return !running_ || !queue_.empty(); });
      if (!running_ && queue_.empty()) return;
      range_id = queue_.front();
      queue_.pop_front();
      busy_ = true;
    }
    HeartbeatWorkScope work(hb.get());

    // Test hook: park here — after claiming a task (busy, not beating)
    // — so health tests can simulate a stalled merge deterministically.
    if (std::atomic<int>* park = table_->config().merge_test_park;
        park != nullptr && park->load(std::memory_order_acquire) != 0) {
      park->store(2, std::memory_order_release);  // ack: parked
      while (park->load(std::memory_order_acquire) != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }

    // Section 4.4: updates may use fine-grained ranges while merges
    // operate at coarser granularity — one task consolidates
    // `merge_fanin` consecutive ranges.
    uint32_t fanin = table_->config().merge_fanin;
    if (fanin < 1) fanin = 1;
    uint64_t first = (range_id / fanin) * fanin;
    for (uint64_t id = first; id < first + fanin; ++id) {
      if (hb != nullptr) hb->Beat();  // progress between ranges
      Table::Range* r = table_->GetRange(id);
      if (r == nullptr) continue;
      // Allow re-enqueueing while we work so no trigger is lost.
      r->queued.store(false, std::memory_order_release);
      table_->RunInsertMerge(*r);
      table_->RunUpdateMerge(*r, table_->schema().AllColumns(), true);
    }
    table_->epochs().TryReclaim();

    {
      std::lock_guard<std::mutex> g(mu_);
      busy_ = false;
      ++tasks_processed_;
    }
    idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Insert merge (Section 3.2): table-level tail pages -> base segments
// ---------------------------------------------------------------------------

bool Table::RunInsertMerge(Range& r) {
  // Timed manually (not an RAII scope) so the no-op early returns do
  // not dilute the duration histogram with empty calls.
  uint64_t merge_t0 = kTraceEnabled ? NowNanos() : 0;
  SpinGuard g(r.merge_latch);
  // Pin the epoch: the pages of the segments we read from may be
  // evicted concurrently (buffer pool), and the handle contract
  // requires a guard for the retired-payload backstop.
  EpochGuard eguard(epochs_);
  uint32_t occ = r.occupied.load(std::memory_order_acquire);
  uint32_t based = r.based.load(std::memory_order_acquire);
  if (based >= occ) return false;

  // Committed prefix of the insert range: stop at the first insert
  // whose transaction is still in flight.
  uint32_t new_based = based;
  for (uint32_t slot = based; slot < occ; ++slot) {
    std::atomic<Value>* sref = r.inserts.StartTimeSlot(slot + 1);
    Value raw = sref->load(std::memory_order_acquire);
    if (raw == kNull) break;  // insert mid-flight
    if (IsAbortedStamp(raw)) {
      new_based = slot + 1;
      continue;
    }
    if (IsTxnId(raw)) {
      TransactionManager::StateView view = txn_manager_->GetState(raw);
      if (!view.found) {
        raw = sref->load(std::memory_order_acquire);
        if (IsTxnId(raw) && !IsAbortedStamp(raw)) break;  // stamping races
        if (IsAbortedStamp(raw) || raw == kNull) {
          if (raw == kNull) break;
          new_based = slot + 1;
          continue;
        }
        new_based = slot + 1;
        continue;
      }
      if (view.state == TxnState::kCommitted) {
        Value expected = raw;
        sref->compare_exchange_strong(expected, view.commit,
                                      std::memory_order_acq_rel);
        new_based = slot + 1;
        continue;
      }
      if (view.state == TxnState::kAborted) {
        Value expected = raw;
        sref->compare_exchange_strong(expected, kAbortedStamp,
                                      std::memory_order_acq_rel);
        new_based = slot + 1;
        continue;
      }
      break;  // active / pre-commit
    }
    new_based = slot + 1;  // already a commit time
  }
  if (new_based == based) return false;

  const uint32_t ncols = schema_.num_columns();
  const uint32_t nphys = ncols + kBaseMetaColumns;
  uint32_t tps = r.merged_tps.load(std::memory_order_acquire);

  std::vector<BaseSegment*> fresh(nphys, nullptr);
  for (uint32_t pc = 0; pc < nphys; ++pc) {
    BaseSegment* old = r.base[pc].load(std::memory_order_acquire);
    PageHandle old_page = old != nullptr ? old->Pin() : PageHandle();
    std::vector<Value> vals(new_based, kNull);
    for (uint32_t slot = 0; slot < new_based; ++slot) {
      if (old != nullptr && slot < old->num_slots) {
        vals[slot] = old_page.Get(slot);
        continue;
      }
      Value raw = r.inserts.Read(slot + 1, kTailStartTime);
      bool aborted = IsAbortedStamp(raw) || raw == kNull;
      if (pc < ncols) {
        vals[slot] =
            aborted ? kNull : r.inserts.Read(slot + 1, kTailMetaColumns + pc);
      } else {
        switch (pc - ncols) {
          case kBaseStartTime:
          case kBaseLastUpdated:
            vals[slot] = aborted ? kNull : raw;
            break;
          case kBaseSchemaEnc:
            vals[slot] = aborted ? kDeleteFlag : 0;
            break;
        }
      }
    }
    auto seg = new BaseSegment();
    seg->tps = tps;
    seg->num_slots = new_based;
    seg->page = MakeSegmentPage(std::move(vals));
    fresh[pc] = seg;
  }

  // Step 4/5: swap the page directory entries and retire the old
  // segments via the epoch manager (Figure 6).
  for (uint32_t pc = 0; pc < nphys; ++pc) {
    BaseSegment* old = r.base[pc].exchange(fresh[pc],
                                           std::memory_order_acq_rel);
    if (old != nullptr) {
      stats_.segments_retired.fetch_add(1, std::memory_order_relaxed);
      epochs_.Retire([old] { delete old; });
    }
  }
  r.based.store(new_based, std::memory_order_release);

  // Table-level tail pages of the merged prefix can be discarded once
  // current readers drain (Section 4.1.1, "Merging Table-level
  // Tail-pages").
  Range* rp = &r;
  uint32_t keep_from = new_based + 1;
  epochs_.Retire([rp, keep_from] { rp->inserts.DropRecordsBelow(keep_from); });

  stats_.insert_merges.fetch_add(1, std::memory_order_relaxed);
  obs_.insert_rows_merged->Add(new_based - based);
  if (kTraceEnabled) {
    obs_.merge_insert_ns->Record(NowNanos() - merge_t0);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Update merge (Algorithm 1)
// ---------------------------------------------------------------------------

namespace {

void AtomicMaxU32Local(std::atomic<uint32_t>& a, uint32_t v) {
  uint32_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
}

/// Per-slot consolidation state used by the reverse scan (Step 3).
struct SlotMergeState {
  ColumnMask seen = 0;      ///< columns whose newest value was captured
  bool deleted = false;
  bool lut_set = false;
  Value lut = 0;
  ColumnMask applied = 0;   ///< columns applied (for schema encoding)
  std::unordered_map<uint32_t, Value> values;
};

}  // namespace

bool Table::RunUpdateMerge(Range& r, ColumnMask data_cols, bool all_columns) {
  // Timed manually — early returns (nothing to merge) are not samples.
  uint64_t merge_t0 = kTraceEnabled ? NowNanos() : 0;
  SpinGuard g(r.merge_latch);
  // Pin the epoch for the whole consolidation: page handles over the
  // old segments require it (see RunInsertMerge).
  EpochGuard eguard(epochs_);
  uint32_t based = r.based.load(std::memory_order_acquire);
  if (based == 0) return false;  // nothing insert-merged yet

  const uint32_t ncols = schema_.num_columns();
  BaseSegment* any = r.base[ncols + kBaseSchemaEnc].load(
      std::memory_order_acquire);
  if (any == nullptr) return false;

  uint32_t old_tps = r.merged_tps.load(std::memory_order_acquire);
  uint32_t last = r.updates.LastSeq();
  if (last <= old_tps) return false;

  // Step 1: identify the consecutive committed prefix of tail records
  // beyond the current TPS ("always operating on stable data").
  uint32_t new_tps = old_tps;
  for (uint32_t seq = old_tps + 1; seq <= last; ++seq) {
    std::atomic<Value>* sref = r.updates.StartTimeSlot(seq);
    Value raw = sref->load(std::memory_order_acquire);
    if (raw == kNull) break;  // reserved but not yet published
    if (IsAbortedStamp(raw)) {
      new_tps = seq;  // tombstone: processed but not applied
      continue;
    }
    if (IsTxnId(raw)) {
      TransactionManager::StateView view = txn_manager_->GetState(raw);
      if (!view.found) {
        // Outcome stamped concurrently; re-read.
        raw = sref->load(std::memory_order_acquire);
        if (IsTxnId(raw)) break;
        if (IsAbortedStamp(raw)) {
          new_tps = seq;
          continue;
        }
      } else if (view.state == TxnState::kCommitted) {
        Value expected = raw;
        sref->compare_exchange_strong(expected, view.commit,
                                      std::memory_order_acq_rel);
        raw = view.commit;
      } else if (view.state == TxnState::kAborted) {
        Value expected = raw;
        sref->compare_exchange_strong(expected, kAbortedStamp,
                                      std::memory_order_acq_rel);
        new_tps = seq;
        continue;
      } else {
        break;  // active / pre-commit: prefix ends
      }
    }
    // Strengthened stability (Section 4.1.1): records whose base slot
    // is not insert-merged yet end the prefix.
    uint32_t slot = static_cast<uint32_t>(r.updates.Read(seq, kTailBaseRid));
    if (slot >= based) break;
    new_tps = seq;
  }
  if (new_tps == old_tps) return false;

  // Step 3: reverse scan with a seen-set — only the newest version of
  // each (record, column) is consolidated; earlier ones are skipped.
  std::unordered_map<uint32_t, SlotMergeState> latest;
  ColumnMask touched = 0;
  for (uint32_t seq = new_tps; seq > old_tps; --seq) {
    Value raw = r.updates.Read(seq, kTailStartTime);
    if (IsAbortedStamp(raw) || raw == kNull) continue;
    uint32_t slot = static_cast<uint32_t>(r.updates.Read(seq, kTailBaseRid));
    Value enc = r.updates.Read(seq, kTailSchemaEncoding);
    if (IsSupersededRecord(enc)) continue;  // implicitly invalidated
    SlotMergeState& st = latest[slot];
    if (st.deleted) continue;  // a newer delete shadows everything
    if (IsDeleteRecord(enc) && st.seen == 0) {
      st.deleted = true;
      st.lut = raw;
      st.lut_set = true;
      continue;
    }
    ColumnMask cols = SchemaColumns(enc) & data_cols;
    ColumnMask take = cols & ~st.seen;
    if (take != 0) {
      for (BitIter it(take); it; ++it) {
        st.values[static_cast<uint32_t>(*it)] =
            r.updates.Read(seq, kTailMetaColumns + static_cast<uint32_t>(*it));
      }
      st.seen |= take;
      st.applied |= take;
      touched |= take;
      if (!st.lut_set) {
        st.lut = raw;  // newest contributing record's start time
        st.lut_set = true;
      }
    }
  }

  // Step 3 (cont.): consolidate into fresh segments. Untouched columns
  // share the old read-optimized data and only advance their lineage.
  const uint32_t nphys = ncols + kBaseMetaColumns;
  std::vector<BaseSegment*> fresh(nphys, nullptr);
  for (uint32_t pc = 0; pc < nphys; ++pc) {
    BaseSegment* old = r.base[pc].load(std::memory_order_acquire);
    auto seg = new BaseSegment();
    seg->num_slots = old->num_slots;
    bool is_data = pc < ncols;
    bool rebuilt = false;
    if (is_data && (touched & (1ull << pc)) != 0) {
      PageHandle old_page = old->Pin();
      std::vector<Value> vals(old->num_slots);
      for (uint32_t s = 0; s < old->num_slots; ++s) {
        vals[s] = old_page.Get(s);
      }
      for (auto& [slot, st] : latest) {
        auto it = st.values.find(pc);
        if (it != st.values.end() && slot < old->num_slots) {
          vals[slot] = it->second;
        }
        if (st.deleted && slot < old->num_slots) vals[slot] = kNull;
      }
      seg->page = MakeSegmentPage(std::move(vals));
      rebuilt = true;
    } else if (!is_data && pc - ncols == kBaseLastUpdated) {
      PageHandle old_page = old->Pin();
      std::vector<Value> vals(old->num_slots);
      for (uint32_t s = 0; s < old->num_slots; ++s) {
        vals[s] = old_page.Get(s);
      }
      for (auto& [slot, st] : latest) {
        if (st.lut_set && slot < old->num_slots) {
          Value prev = vals[slot];
          if (prev == kNull || IsTxnId(prev) || st.lut > prev) {
            vals[slot] = st.lut;
          }
        }
      }
      seg->page = MakeSegmentPage(std::move(vals));
      rebuilt = true;
    } else if (!is_data && pc - ncols == kBaseSchemaEnc) {
      PageHandle old_page = old->Pin();
      std::vector<Value> vals(old->num_slots);
      for (uint32_t s = 0; s < old->num_slots; ++s) {
        vals[s] = old_page.Get(s);
      }
      for (auto& [slot, st] : latest) {
        if (slot >= old->num_slots) continue;
        vals[slot] |= st.applied;
        if (st.deleted) vals[slot] |= kDeleteFlag;
      }
      seg->page = MakeSegmentPage(std::move(vals));
      rebuilt = true;
    }
    if (!rebuilt) {
      // Start Time column is preserved verbatim (Section 4.1.1: "the
      // old Start Time column remains intact"); untouched data columns
      // share their pages — including residency and the swap location,
      // so a shared page is not re-written to the store.
      seg->page = old->page;
    }
    // Lineage: per-column merge only advances the merged columns'
    // TPS — the mixed-TPS state is what Lemma 3 detects and repairs.
    seg->tps = (all_columns || rebuilt || !is_data) ? new_tps : old->tps;
    fresh[pc] = seg;
  }

  // Step 4: update the page directory — the only foreground action.
  for (uint32_t pc = 0; pc < nphys; ++pc) {
    BaseSegment* old = r.base[pc].exchange(fresh[pc],
                                           std::memory_order_acq_rel);
    if (old != nullptr) {
      stats_.segments_retired.fetch_add(1, std::memory_order_relaxed);
      // Step 5: epoch-based de-allocation (Figure 6).
      epochs_.Retire([old] { delete old; });
    }
  }
  if (all_columns) {
    r.merged_tps.store(new_tps, std::memory_order_release);
  } else {
    // Partial merges do not advance the range-level cumulation
    // watermark beyond the minimum column TPS.
    uint32_t min_tps = new_tps;
    for (ColumnId c = 0; c < ncols; ++c) {
      BaseSegment* seg = r.base[c].load(std::memory_order_acquire);
      if (seg != nullptr && seg->tps < min_tps) min_tps = seg->tps;
    }
    AtomicMaxU32Local(r.merged_tps, min_tps);
  }

  stats_.merges.fetch_add(1, std::memory_order_relaxed);
  stats_.tail_records_merged.fetch_add(new_tps - old_tps,
                                       std::memory_order_relaxed);
  obs_.merge_rows->Add(new_tps - old_tps);
  if (kTraceEnabled) {
    obs_.merge_update_ns->Record(NowNanos() - merge_t0);
  }
  return true;
}

}  // namespace lstore
