// Asynchronous merge manager (Section 4.1, Figure 5).
//
// "Writer threads place candidate tail pages to be merged into the
// merge queue while the merge thread continuously takes pages from
// the queue and processes them." One background thread per table; the
// merge itself is implemented in Table::RunUpdateMerge /
// RunInsertMerge so it can also be driven synchronously by tests.

#ifndef LSTORE_CORE_MERGE_H_
#define LSTORE_CORE_MERGE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

namespace lstore {

class Table;

class MergeManager {
 public:
  explicit MergeManager(Table* table);
  ~MergeManager();

  void Start();
  void Stop();

  /// Enqueue a range for merging (insert-merge and/or update merge,
  /// decided when the task runs).
  void Enqueue(uint64_t range_id);

  /// Block until the queue is empty and the worker is idle.
  void Drain();

  uint64_t tasks_processed() const { return tasks_processed_; }

 private:
  void Loop();

  Table* table_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<uint64_t> queue_;
  bool running_ = false;
  bool busy_ = false;
  uint64_t tasks_processed_ = 0;
};

}  // namespace lstore

#endif  // LSTORE_CORE_MERGE_H_
