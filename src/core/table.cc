#include "core/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/bitutil.h"
#include "core/commit_pipeline.h"
#include "core/historic.h"
#include "core/merge.h"
#include "core/query.h"
#include "storage/compression/varint.h"

namespace lstore {

namespace {

void AtomicMaxU32(std::atomic<uint32_t>& a, uint32_t v) {
  uint32_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Range
// ---------------------------------------------------------------------------

Table::Range::Range(uint64_t range_id, uint32_t range_size, uint32_t num_cols,
                    uint32_t tail_page_slots)
    : id(range_id),
      indirection(std::make_unique<std::atomic<uint64_t>[]>(range_size)),
      ever_updated(std::make_unique<std::atomic<uint64_t>[]>(range_size)),
      inserts(num_cols, tail_page_slots),
      updates(num_cols, tail_page_slots),
      base(num_cols + kBaseMetaColumns) {
  for (uint32_t i = 0; i < range_size; ++i) {
    indirection[i].store(0, std::memory_order_relaxed);
    ever_updated[i].store(0, std::memory_order_relaxed);
  }
  for (auto& b : base) b.store(nullptr, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Table::Table(std::string name, Schema schema, TableConfig config,
             TransactionManager* txn_manager)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      config_(config),
      chunks_(std::make_unique<std::atomic<RangeChunk*>[]>(kMaxRangeChunks)) {
  for (uint32_t i = 0; i < kMaxRangeChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
  if (txn_manager != nullptr) {
    txn_manager_ = txn_manager;
  } else {
    owned_txn_manager_ = std::make_unique<TransactionManager>();
    txn_manager_ = owned_txn_manager_.get();
  }
  metrics_ = config_.metrics;
  if (metrics_ == nullptr) {
    // Standalone table: own a registry so metrics() is always valid,
    // and mirror the epoch queue depth into it at snapshot time (a
    // database-owned registry gets a database-wide collector instead).
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
    metrics_->AddCollector([this](MetricsRegistry& r) {
      r.GetGauge("lstore_epoch_pending",
                 "Retired-but-unreclaimed epoch entries")
          ->Set(static_cast<int64_t>(epochs_.pending()));
    });
  }
  obs_.merge_update_ns = metrics_->GetHistogram(
      "lstore_merge_update_ns", "Update-merge duration per range (ns)");
  obs_.merge_insert_ns = metrics_->GetHistogram(
      "lstore_merge_insert_ns", "Insert-merge duration per range (ns)");
  obs_.merge_historic_ns = metrics_->GetHistogram(
      "lstore_merge_historic_ns", "Historic-compression duration (ns)");
  obs_.query_partition_ns = metrics_->GetHistogram(
      "lstore_query_partition_ns", "Query scan partition latency (ns)");
  obs_.merge_rows = metrics_->GetCounter(
      "lstore_merge_rows_consolidated_total",
      "Tail records consolidated by update merges");
  obs_.insert_rows_merged = metrics_->GetCounter(
      "lstore_merge_insert_rows_total",
      "Insert rows turned into base segments");
  obs_.historic_versions = metrics_->GetCounter(
      "lstore_merge_historic_versions_total",
      "Versions moved into the historic store");
  obs_.commit_publish_ns = metrics_->GetHistogram(
      "lstore_commit_publish_ns",
      "Commit publish stage: state flip + write stamping (ns)");
  obs_.commits =
      metrics_->GetCounter("lstore_commits_total", "Pipeline commits");
  obs_.aborts =
      metrics_->GetCounter("lstore_aborts_total", "Pipeline aborts");
  if (config_.enable_logging && !config_.log_path.empty()) {
    log_ = std::make_unique<RedoLog>();
    log_->set_sync_counter(config_.sync_counter);
    FramedLogMetrics lm;
    lm.appends = metrics_->GetCounter("lstore_redo_appends_total",
                                      "Redo-log record frames appended");
    lm.append_bytes = metrics_->GetCounter("lstore_redo_append_bytes_total",
                                           "Redo-log framed bytes appended");
    lm.fsyncs = metrics_->GetCounter("lstore_redo_fsyncs_total",
                                     "Redo-log commit-path fsyncs");
    lm.append_ns = metrics_->GetHistogram("lstore_redo_append_ns",
                                          "Redo-log append latency (ns)");
    lm.flush_ns = metrics_->GetHistogram("lstore_redo_flush_ns",
                                         "Redo-log flush latency (ns)");
    log_->set_metrics(lm);
    Status s = log_->Open(config_.log_path, /*truncate=*/false);
    if (!s.ok()) log_.reset();
  }
  buffer_pool_ = config_.buffer_pool;
  segment_store_ = config_.segment_store;
  if (buffer_pool_ == nullptr && segment_store_ == nullptr) {
    // Memory-capped test knob: force standalone tables through the
    // demand-paging path by spilling to an anonymous temp file.
    // (A store-only wiring — durable reopen without a pool — is left
    // alone: its lazily restored segments reference that store.)
    uint64_t env_budget = BufferPool::EnvBudgetBytes();
    if (env_budget > 0) {
      owned_store_ = std::make_unique<SegmentStore>();
      if (owned_store_->OpenTemp().ok()) {
        owned_pool_ = std::make_unique<BufferPool>(env_budget);
        buffer_pool_ = owned_pool_.get();
        segment_store_ = owned_store_.get();
      } else {
        owned_store_.reset();
      }
    }
  }
  merge_manager_ = std::make_unique<MergeManager>(this);
  if (config_.enable_merge_thread) merge_manager_->Start();
}

Table::~Table() {
  if (merge_manager_) merge_manager_->Stop();
  // Detach this table's pages from the (shared) buffer pool first: a
  // concurrent eviction on behalf of another table must not retire a
  // payload into an epoch manager that is about to be destroyed.
  if (buffer_pool_ != nullptr) buffer_pool_->DetachDomain(&epochs_);
  // Run pending epoch deleters BEFORE tearing down the ranges they
  // reference (retired segments, deferred tail-page drops, evicted
  // payloads). No readers can exist at this point.
  epochs_.DrainAllUnsafe();
  // Free ranges and their published structures.
  for (uint64_t c = 0; c < kMaxRangeChunks; ++c) {
    RangeChunk* chunk = chunks_[c].load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (uint32_t i = 0; i < kRangeChunkSize; ++i) {
      Range* r = chunk->ranges[i].load(std::memory_order_acquire);
      if (r == nullptr) continue;
      for (auto& b : r->base) delete b.load(std::memory_order_acquire);
      delete r->historic.load(std::memory_order_acquire);
      delete r;
    }
    delete chunk;
  }
}

Table::Range* Table::GetRange(uint64_t id) const {
  uint64_t c = id / kRangeChunkSize;
  if (c >= kMaxRangeChunks) return nullptr;
  RangeChunk* chunk = chunks_[c].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return chunk->ranges[id % kRangeChunkSize].load(std::memory_order_acquire);
}

Table::Range* Table::EnsureRange(uint64_t id) {
  Range* r = GetRange(id);
  if (r != nullptr) return r;
  SpinGuard g(ranges_latch_);
  uint64_t c = id / kRangeChunkSize;
  RangeChunk* chunk = chunks_[c].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    chunk = new RangeChunk();
    chunks_[c].store(chunk, std::memory_order_release);
  }
  auto& slot = chunk->ranges[id % kRangeChunkSize];
  r = slot.load(std::memory_order_acquire);
  if (r == nullptr) {
    r = new Range(id, config_.range_size, schema_.num_columns(),
                  config_.tail_page_slots);
    slot.store(r, std::memory_order_release);
    uint64_t n = num_ranges_.load(std::memory_order_relaxed);
    while (n < id + 1 && !num_ranges_.compare_exchange_weak(
                             n, id + 1, std::memory_order_acq_rel)) {
    }
  }
  return r;
}

uint64_t Table::num_ranges() const {
  return num_ranges_.load(std::memory_order_acquire);
}

uint32_t Table::RangeTps(uint64_t range_id) const {
  Range* r = GetRange(range_id);
  return r == nullptr ? 0 : r->merged_tps.load(std::memory_order_acquire);
}

uint32_t Table::RangeTailLength(uint64_t range_id) const {
  Range* r = GetRange(range_id);
  return r == nullptr ? 0 : r->updates.LastSeq();
}

std::vector<uint32_t> Table::RangeColumnTps(uint64_t range_id) const {
  std::vector<uint32_t> out;
  Range* r = GetRange(range_id);
  if (r == nullptr) return out;
  EpochGuard guard(epochs_);
  for (ColumnId c = 0; c < schema_.num_columns(); ++c) {
    BaseSegment* seg = Segment(*r, c);
    out.push_back(seg == nullptr ? 0 : seg->tps);
  }
  return out;
}

std::vector<Table::ChainEntry> Table::DebugChain(Value key,
                                                 ColumnId col) const {
  std::vector<ChainEntry> out;
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return out;
  Range* r = GetRange(RangeOf(rid));
  if (r == nullptr) return out;
  uint32_t slot = SlotOf(rid);
  EpochGuard guard(epochs_);
  uint32_t seq = IndirSeq(r->indirection[slot].load(std::memory_order_acquire));
  uint32_t boundary = r->historic_boundary.load(std::memory_order_acquire);
  int hops = 0;
  // Stop at the historic boundary: pages below it may be reclaimed
  // (compressed versions live in the historic store instead).
  while (seq >= boundary && seq != 0 && hops++ < 1000) {
    ChainEntry e;
    e.seq = seq;
    e.raw_start = r->updates.Read(seq, kTailStartTime);
    e.schema_encoding = r->updates.Read(seq, kTailSchemaEncoding);
    e.col_value = r->updates.Read(seq, kTailMetaColumns + col);
    out.push_back(e);
    seq = static_cast<uint32_t>(r->updates.Read(seq, kTailIndirection));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Base record accessors
// ---------------------------------------------------------------------------

Value Table::BaseValue(const Range& r, uint32_t slot,
                       uint32_t physical_col) const {
  BaseSegment* seg = r.base[physical_col].load(std::memory_order_acquire);
  if (seg != nullptr && slot < seg->num_slots) {
    // O(1) single-value demand read: a buffer-pool miss on a
    // fixed-width cold segment decodes only the requested slot
    // instead of inflating the whole column (varint-coded segments
    // fall through to the full-inflate pin).
    Value v;
    if (BufferPool::ReadColdSlot(seg->page.get(), slot, &v)) return v;
    return seg->Pin().Get(slot);
  }
  // Not insert-merged yet: the record lives in the table-level tail
  // pages (Section 3.2) at the aligned position slot+1.
  uint32_t seq = slot + 1;
  if (physical_col < schema_.num_columns()) {
    return r.inserts.Read(seq, kTailMetaColumns + physical_col);
  }
  switch (physical_col - schema_.num_columns()) {
    case kBaseStartTime:
      return r.inserts.Read(seq, kTailStartTime);
    case kBaseLastUpdated:
      return r.inserts.Read(seq, kTailStartTime);
    case kBaseSchemaEnc:
      return 0;
  }
  return kNull;
}

Value Table::BaseStartRaw(const Range& r, uint32_t slot) const {
  return BaseMetaValue(r, slot, kBaseStartTime);
}

// ---------------------------------------------------------------------------
// Buffer-managed segment pages
// ---------------------------------------------------------------------------

std::shared_ptr<SegmentPage> Table::MakeSegmentPage(std::vector<Value> vals) {
  auto page = std::make_shared<SegmentPage>(&epochs_,
                                            static_cast<uint32_t>(vals.size()),
                                            config_.compress_merged_pages);
  if (segment_store_ != nullptr) {
    // Write through BEFORE building (Build consumes vals): once the
    // bytes are in the store the page is evictable, and a durable
    // store lets checkpoints reference the segment instead of
    // rewriting it. The payload format is chosen per segment: the
    // byte-aligned fixed-width layout wins ties because it gives cold
    // POINT reads O(1) slot addressing (decode one slot, not the
    // range); value distributions where varint is strictly smaller
    // keep the compact layout and the full-inflate path.
    uint64_t maxv = 0;
    size_t varint_bytes = 0;
    for (Value v : vals) {
      if (v > maxv) maxv = v;
      varint_bytes += VarintLength(v);
    }
    const uint32_t width = maxv <= 0xffu           ? 1
                           : maxv <= 0xffffu       ? 2
                           : maxv <= 0xffffffffull ? 4
                                                   : 8;
    const bool fixed = vals.size() * width <= varint_bytes;
    std::string payload;
    PutVarint64(&payload, vals.size());
    if (fixed) {
      payload.push_back(static_cast<char>(width));
      for (Value v : vals) {
        for (uint32_t b = 0; b < width; ++b) {
          payload.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
        }
      }
    } else {
      for (Value v : vals) PutVarint64(&payload, v);
    }
    uint64_t offset = 0;
    if (segment_store_->Append(payload, &offset).ok()) {
      page->SetSwap(segment_store_, offset, payload.size(),
                    Fnv1a32(payload.data(), payload.size()),
                    fixed ? SwapFormat::kFixed : SwapFormat::kVarint,
                    fixed ? width : 0);
    }
    // Append failure (e.g. ENOSPC): the page simply stays resident
    // and unevictable — correctness is unaffected.
  }
  page->SetResident(
      CompressedColumn::Build(std::move(vals), config_.compress_merged_pages)
          .release());
  if (buffer_pool_ != nullptr) buffer_pool_->Register(page.get());
  return page;
}

std::shared_ptr<SegmentPage> Table::MakeColdSegmentPage(
    uint32_t num_slots, uint64_t offset, uint64_t length, uint32_t checksum,
    SwapFormat format, uint32_t value_width) {
  auto page = std::make_shared<SegmentPage>(&epochs_, num_slots,
                                            config_.compress_merged_pages);
  page->SetSwap(segment_store_, offset, length, checksum, format,
                value_width);
  if (buffer_pool_ != nullptr) buffer_pool_->Register(page.get());
  return page;
}

Status Table::SyncSegmentStore() {
  if (segment_store_ == nullptr || !segment_store_->durable()) {
    return Status::OK();
  }
  return segment_store_->Sync();
}

std::atomic<Value>* Table::BaseStartSlot(Range& r, uint32_t slot) const {
  // Only meaningful while the slot is not insert-merged (the segment's
  // start column is a stamped, stable commit time).
  return r.inserts.StartTimeSlot(slot + 1);
}

// ---------------------------------------------------------------------------
// Visibility
// ---------------------------------------------------------------------------

void Table::StampCommitTime(std::atomic<Value>* slot, Value observed) const {
  Value expected = observed;
  // Lazy swap of txn id -> commit time (Section 5.1.1); losing the
  // race is fine, someone else stamped.
  TransactionManager::StateView view = txn_manager_->GetState(observed);
  if (view.found && view.state == TxnState::kCommitted) {
    slot->compare_exchange_strong(expected, view.commit,
                                  std::memory_order_acq_rel);
  }
}

Table::Visibility Table::CheckVisible(std::atomic<Value>* slot_ref, Value& raw,
                                      const ReadSpec& spec,
                                      TxnId* dependency) const {
  for (int spin = 0;; ++spin) {
    if (raw == kNull) return Visibility::kInvisible;
    if (IsAbortedStamp(raw)) return Visibility::kInvisible;
    if (!IsTxnId(raw)) {
      return raw < spec.as_of ? Visibility::kVisible : Visibility::kInvisible;
    }
    // Raw holds a transaction id.
    if (spec.txn != nullptr && raw == spec.txn->id()) {
      return Visibility::kVisible;  // read-your-own-writes
    }
    TransactionManager::StateView view = txn_manager_->GetState(raw);
    if (!view.found) {
      // Entry retired: the outcome has been stamped into the slot;
      // re-read and re-evaluate.
      Value reread = slot_ref->load(std::memory_order_acquire);
      if (reread == raw) {
        // Stamping is in flight on another thread; brief wait.
        std::this_thread::yield();
        continue;
      }
      raw = reread;
      continue;
    }
    switch (view.state) {
      case TxnState::kActive:
        return Visibility::kInvisible;
      case TxnState::kPreCommit:
        if (spec.speculative && view.commit < spec.as_of) {
          if (dependency != nullptr) *dependency = raw;
          return Visibility::kVisibleSpeculative;
        }
        if (spec.as_of != kMaxTimestamp &&
            (view.commit == 0 || view.commit < spec.as_of)) {
          // A pre-commit writer whose commit time falls inside this
          // snapshot: its outcome determines visibility, so wait for
          // the (short) validation window to resolve — otherwise two
          // reads of the same snapshot could disagree.
          std::this_thread::yield();
          continue;
        }
        return Visibility::kInvisible;
      case TxnState::kCommitted: {
        Value expected = raw;
        slot_ref->compare_exchange_strong(expected, view.commit,
                                          std::memory_order_acq_rel);
        raw = view.commit;
        return view.commit < spec.as_of ? Visibility::kVisible
                                        : Visibility::kInvisible;
      }
      case TxnState::kAborted: {
        Value expected = raw;
        slot_ref->compare_exchange_strong(expected, kAbortedStamp,
                                          std::memory_order_acq_rel);
        return Visibility::kInvisible;
      }
    }
  }
}

bool Table::VisibleAtSnapshot(Value raw_start, Timestamp as_of) const {
  if (raw_start == kNull || IsAbortedStamp(raw_start)) return false;
  if (IsTxnId(raw_start)) {
    TransactionManager::StateView view = txn_manager_->GetState(raw_start);
    return view.found && view.state == TxnState::kCommitted &&
           view.commit < as_of;
  }
  return raw_start < as_of;
}

// ---------------------------------------------------------------------------
// Record resolution (the 2-hop read path of Section 2.2)
// ---------------------------------------------------------------------------

Status Table::ResolveRecord(Range& r, uint32_t slot, const ReadSpec& spec,
                            ColumnMask needed, std::vector<Value>* out,
                            uint32_t* observed_seq) const {
  Status status = Status::OK();
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool consistent = true;
    status = ResolveRecordOnce(r, slot, spec, needed, out, observed_seq,
                               &consistent);
    if (consistent) return status;
    // Theorem 2: an inconsistent read (detected via the in-page
    // lineage) is repaired by re-resolving against fresh state.
    std::this_thread::yield();
    if (attempt == 6) {
      std::fprintf(stderr,
                   "lstore: ResolveRecord retries exhausted slot=%u as_of=%llu"
                   " tps=%u\n",
                   slot, (unsigned long long)spec.as_of,
                   r.merged_tps.load(std::memory_order_acquire));
    }
  }
  return status;
}

Status Table::ResolveRecordOnce(Range& r, uint32_t slot, const ReadSpec& spec,
                                ColumnMask needed, std::vector<Value>* out,
                                uint32_t* observed_seq,
                                bool* consistent) const {
  constexpr uint32_t kInvisibleSeq = 0xFFFFFFFFu;
  if (observed_seq != nullptr) *observed_seq = kInvisibleSeq;

  // 1. Base record (original insert) visibility.
  {
    uint32_t based = r.based.load(std::memory_order_acquire);
    if (slot < based) {
      Value start = BaseMetaValue(r, slot, kBaseStartTime);
      if (!(start != kNull && start < spec.as_of)) {
        // Insert-merged starts are stable commit times; kNull marks an
        // aborted insert.
        return Status::NotFound("record not visible");
      }
    } else {
      std::atomic<Value>* sref = BaseStartSlot(r, slot);
      Value raw = sref->load(std::memory_order_acquire);
      TxnId dep = 0;
      Visibility v = CheckVisible(sref, raw, spec, &dep);
      if (v == Visibility::kInvisible) {
        return Status::NotFound("record not visible");
      }
      if (v == Visibility::kVisibleSpeculative && spec.txn != nullptr) {
        spec.txn->commit_dependencies().push_back(dep);
      }
    }
  }

  // 2. Walk the lineage chain from the Indirection column. Columns
  // whose base Schema Encoding bit is clear were never updated, so
  // their value lives in base pages for every snapshot — serve them
  // without touching the chain (the 0/2-hop property of Section 2.2).
  uint64_t iv = r.indirection[slot].load(std::memory_order_acquire);
  uint32_t seq = IndirSeq(iv);
  uint64_t ever = r.ever_updated[slot].load(std::memory_order_acquire);
  ColumnMask remaining = needed & ever;
  ColumnMask base_resident = needed & ~ever;
  bool first_found = false;
  const bool latest_mode = spec.as_of == kMaxTimestamp;

  // Fast path (0-hop): every requested column is covered by merged
  // base segments at or beyond the chain head.
  if (latest_mode && seq != 0) {
    bool covered = true;
    BaseSegment* enc_seg = r.base[schema_.num_columns() + kBaseSchemaEnc]
                               .load(std::memory_order_acquire);
    if (enc_seg == nullptr || slot >= enc_seg->num_slots ||
        enc_seg->tps < seq) {
      covered = false;
    }
    for (BitIter it(needed); covered && it; ++it) {
      BaseSegment* seg = Segment(r, static_cast<uint32_t>(*it));
      if (seg == nullptr || slot >= seg->num_slots || seg->tps < seq) {
        covered = false;
        break;
      }
    }
    if (covered) {
      Value enc = BaseMetaValue(r, slot, kBaseSchemaEnc);
      if (IsDeleteRecord(enc)) return Status::NotFound("deleted");
      for (BitIter it(needed); it; ++it) {
        (*out)[*it] = BaseDataValue(r, slot, static_cast<ColumnId>(*it));
      }
      if (observed_seq != nullptr) *observed_seq = seq;
      return Status::OK();
    }
  }

  while (seq != 0 && (remaining != 0 || !first_found)) {
    uint32_t boundary = r.historic_boundary.load(std::memory_order_acquire);
    if (seq < boundary) {
      // Continue inside the historic store (Section 4.3).
      HistoricStore* hist = r.historic.load(std::memory_order_acquire);
      if (hist != nullptr) {
        stats_.tail_chain_hops.fetch_add(1, std::memory_order_relaxed);
        auto versions = hist->VersionsOf(slot);
        for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
          if (it->seq > seq) continue;
          if (!(it->start_time < spec.as_of)) continue;
          if (IsSupersededRecord(it->schema_encoding)) continue;
          if (!first_found) {
            first_found = true;
            if (observed_seq != nullptr) *observed_seq = it->seq;
            if (IsDeleteRecord(it->schema_encoding)) {
              return Status::NotFound("deleted");
            }
          }
          ColumnMask take = it->mask & remaining;
          if (take != 0) {
            int vi = 0;
            for (BitIter b(it->mask); b; ++b, ++vi) {
              if (take & (1ull << *b)) (*out)[*b] = it->values[vi];
            }
            remaining &= ~take;
          }
          if (remaining == 0 && first_found) break;
        }
      }
      break;  // chain fully consumed (older than historic = base)
    }

    std::atomic<Value>* sref = r.updates.StartTimeSlot(seq);
    Value raw = sref->load(std::memory_order_acquire);
    TxnId dep = 0;
    Visibility vis = CheckVisible(sref, raw, spec, &dep);
    uint32_t back = static_cast<uint32_t>(r.updates.Read(seq, kTailIndirection));
    if (vis == Visibility::kInvisible) {
      seq = back;
      continue;
    }
    if (vis == Visibility::kVisibleSpeculative && spec.txn != nullptr) {
      spec.txn->commit_dependencies().push_back(dep);
    }
    Value enc = r.updates.Read(seq, kTailSchemaEncoding);
    if (IsSupersededRecord(enc)) {
      seq = back;  // intermediate same-txn version: implicitly invalid
      continue;
    }
    stats_.tail_chain_hops.fetch_add(1, std::memory_order_relaxed);
    if (!first_found) {
      first_found = true;
      if (observed_seq != nullptr) *observed_seq = seq;
      if (IsDeleteRecord(enc)) return Status::NotFound("deleted");
    }
    ColumnMask take = SchemaColumns(enc) & remaining;
    for (BitIter it(take); it; ++it) {
      (*out)[*it] = r.updates.Read(seq, kTailMetaColumns +
                                            static_cast<uint32_t>(*it));
    }
    remaining &= ~take;

    // Per-column TPS cut-off (latest reads only): once every remaining
    // column's base segment already consolidates the rest of the
    // chain, stop walking (Section 4.2).
    if (latest_mode && remaining != 0 && back != 0) {
      ColumnMask cut = 0;
      for (BitIter it(remaining); it; ++it) {
        BaseSegment* seg = Segment(r, static_cast<uint32_t>(*it));
        if (seg != nullptr && slot < seg->num_slots && seg->tps >= back) {
          (*out)[*it] = BaseDataValue(r, slot, static_cast<ColumnId>(*it));
          cut |= 1ull << *it;
        }
      }
      remaining &= ~cut;
    }
    seq = back;
  }

  if (!first_found && observed_seq != nullptr) *observed_seq = 0;

  // 3. Remaining columns found no visible chain version: their value
  // lives in base pages. For snapshot reads, serving them from a data
  // segment is only sound when the record's merged horizon (the Last
  // Updated Time of a segment generation at or beyond the data
  // segment's lineage) lies below the snapshot — a newer merged state
  // with an unmatched chain walk is exactly the inconsistent read of
  // Lemma 3, so flag a retry (Theorem 2). Every value must come from
  // the segment object the guard inspected or from the write-once
  // table-level tail pages: this routine can be preempted arbitrarily
  // long between its loads (the head/ever_updated/based samples may
  // predate a record's first update while a later segment load sees
  // many merges beyond the snapshot), so re-loading pointers or
  // trusting earlier samples would serve too-new values.
  ColumnMask fallback = remaining | base_resident;
  BaseSegment* lut_seg =
      r.base[schema_.num_columns() + kBaseLastUpdated].load(
          std::memory_order_acquire);
  const bool snapshot_read = spec.as_of != kMaxTimestamp && fallback != 0;
  const bool lut_covers = lut_seg != nullptr && slot < lut_seg->num_slots;
  if (snapshot_read && lut_covers) {
    Value lut = lut_seg->Pin().Get(slot);
    if (lut != kNull && (IsTxnId(lut) || lut >= spec.as_of)) {
      *consistent = false;
    }
  }
  for (BitIter it(fallback); it; ++it) {
    uint32_t col = static_cast<uint32_t>(*it);
    BaseSegment* seg = Segment(r, col);
    bool seg_covers = seg != nullptr && slot < seg->num_slots;
    if (snapshot_read && seg_covers &&
        (!lut_covers || seg->tps > lut_seg->tps)) {
      *consistent = false;
    }
    (*out)[*it] = seg_covers
                      ? seg->Pin().Get(slot)
                      : r.inserts.Read(slot + 1, kTailMetaColumns + col);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Txn Table::Begin(IsolationLevel iso) {
  return Txn(this, txn_manager_->Begin(iso));
}

Timestamp Table::Now() const { return txn_manager_->SnapshotNow(); }

Status Table::ValidateReads(Transaction* txn, Timestamp commit_time) {
  bool validate_all = txn->isolation() == IsolationLevel::kSerializable;
  bool validate_spec = txn->isolation() != IsolationLevel::kReadCommitted;
  if (!validate_all && !validate_spec) return Status::OK();
  EpochGuard guard(epochs_);
  // Reads of this transaction's own writes trivially validate.
  std::unordered_set<uint64_t> own;
  for (const WriteEntry& w : txn->writeset()) {
    if (w.owner == this && !w.is_insert) {
      own.insert((w.range_id << 24) | w.seq);
    }
  }
  for (const ReadEntry& e : txn->readset()) {
    if (e.owner != this) continue;
    if (!validate_all && !e.speculative) continue;
    if (own.count((e.range_id << 24) | e.observed_seq) != 0) continue;
    Range* r = GetRange(e.range_id);
    if (r == nullptr) continue;
    std::vector<Value> tmp(schema_.num_columns(), kNull);
    uint32_t now_seq = 0;
    // Re-resolve the visible version as of the commit time, ignoring
    // our own pre-commit versions (spec.txn = nullptr: they carry
    // our txn id and would otherwise shadow the committed version).
    ReadSpec spec{commit_time, nullptr, /*speculative=*/false};
    Status s = ResolveRecord(*r, e.base_slot, spec, 0, &tmp, &now_seq);
    (void)s;  // NotFound encodes deletion; seq comparison covers it
    if (now_seq != e.observed_seq &&
        own.count((e.range_id << 24) | now_seq) == 0) {
      return Status::Aborted("read validation failed");
    }
  }
  // Speculative commit dependencies must have committed ([18]).
  for (TxnId dep : txn->commit_dependencies()) {
    TransactionManager::StateView view = txn_manager_->GetState(dep);
    if (view.found && view.state != TxnState::kCommitted) {
      if (view.state == TxnState::kAborted) {
        return Status::Aborted("speculative dependency aborted");
      }
      // Still pre-commit: wait briefly for the outcome.
      while (view.found && view.state == TxnState::kPreCommit) {
        std::this_thread::yield();
        view = txn_manager_->GetState(dep);
      }
      if (view.found && view.state == TxnState::kAborted) {
        return Status::Aborted("speculative dependency aborted");
      }
    }
  }
  return Status::OK();
}

Status Table::WriteCommitRecord(Transaction* txn, Timestamp commit_time) {
  if (log_ == nullptr) return Status::OK();
  AppendCommitRecord(txn, commit_time);
  return log_->Flush(config_.sync_commit);
}

uint64_t Table::AppendCommitRecord(Transaction* txn, Timestamp commit_time) {
  if (log_ == nullptr) return 0;
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn->id();
  rec.commit_time = commit_time;
  return log_->Append(rec);
}

void Table::StampWrites(Transaction* txn, Value outcome) {
  // The pin keeps tail pages alive: without it, an insert-merge (or
  // historic compression) that already resolved this transaction's
  // outcome via the manager could reclaim the pages under our feet.
  EpochGuard guard(epochs_);
  for (const WriteEntry& w : txn->writeset()) {
    if (w.owner != this) continue;
    Range* r = GetRange(w.range_id);
    if (r == nullptr) continue;
    if (w.is_insert &&
        w.base_slot < r->based.load(std::memory_order_acquire)) {
      // Insert-merge consumed the record: the outcome is already in
      // the base segment's Start Time column and the table-level tail
      // page may be reclaimed. Only the index rollback remains.
      if (outcome == kAbortedStamp) primary_.Erase(w.inserted_key);
      continue;
    }
    if (!w.is_insert &&
        w.seq < r->historic_boundary.load(std::memory_order_acquire)) {
      continue;  // compressed away; outcome was resolved before that
    }
    TailSegment& seg = w.is_insert ? r->inserts : r->updates;
    std::atomic<Value>* slot = seg.StartTimeSlot(w.seq);
    Value expected = txn->id();
    slot->compare_exchange_strong(expected, outcome,
                                  std::memory_order_acq_rel);
    if (outcome == kAbortedStamp && w.is_insert) {
      primary_.Erase(w.inserted_key);
    }
  }
}

Status Table::CommitTxn(Transaction* txn) {
  return CommitAcrossTables(*txn_manager_, txn, {this}, group_commit_);
}

void Table::AbortTxn(Transaction* txn) {
  AbortAcrossTables(*txn_manager_, txn, {this});
}

void Table::WriteAbortRecord(Transaction* txn, bool flush) {
  if (log_ == nullptr) return;
  LogRecord rec;
  rec.type = LogRecordType::kAbort;
  rec.txn_id = txn->id();
  log_->Append(rec);
  if (flush) (void)log_->Flush(config_.sync_commit);
}

// ---------------------------------------------------------------------------
// Insert (Section 3.2)
// ---------------------------------------------------------------------------

Status Table::Insert(Transaction* txn, const std::vector<Value>& row) {
  EpochGuard guard(epochs_);
  return InsertImpl(txn, row, nullptr);
}

Status Table::InsertImpl(Transaction* txn, const std::vector<Value>& row,
                         RedoLog::Batch* log_sink) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  uint64_t rid = next_row_.fetch_add(1, std::memory_order_relaxed);
  Range* r = EnsureRange(RangeOf(rid));
  uint32_t slot = SlotOf(rid);
  uint32_t seq = slot + 1;  // aligned base/tail RIDs

  AtomicMaxU32(r->occupied, slot + 1);

  if (!primary_.Insert(row[0], rid)) {
    // Slot is burned; tombstone it so scans skip it.
    r->inserts.StartTimeSlot(seq)->store(kAbortedStamp,
                                         std::memory_order_release);
    return Status::AlreadyExists("duplicate key");
  }

  for (ColumnId c = 0; c < schema_.num_columns(); ++c) {
    r->inserts.Write(seq, kTailMetaColumns + c, row[c]);
  }
  r->inserts.Write(seq, kTailIndirection, 0);
  r->inserts.Write(seq, kTailSchemaEncoding, 0);
  r->inserts.Write(seq, kTailBaseRid, slot);

  // Publish before logging (checkpoint watermark invariant; see
  // WriteTailVersion). Visibility is still gated by the txn state.
  r->inserts.StartTimeSlot(seq)->store(txn->id(), std::memory_order_release);

  if (log_ != nullptr) {
    LogRecord rec;
    rec.type = LogRecordType::kInsertAppend;
    rec.txn_id = txn->id();
    rec.range_id = r->id;
    rec.seq = seq;
    rec.base_slot = slot;
    rec.backptr = 0;
    rec.schema_encoding = 0;
    rec.start_raw = txn->id();
    rec.mask = schema_.AllColumns();
    rec.values = row;
    if (log_sink != nullptr) {
      log_sink->Add(rec);
    } else {
      log_->Append(rec);
    }
  }

  {
    SpinGuard sg(secondary_latch_);
    for (auto& s : secondaries_) {
      s.index->Add(row[s.col], rid);
    }
  }

  txn->writeset().push_back(
      WriteEntry{r->id, slot, seq, /*is_insert=*/true, row[0], this});
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  MaybeScheduleMerge(*r);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Update / Delete (Section 3.1)
// ---------------------------------------------------------------------------

Status Table::Update(Transaction* txn, Value key, ColumnMask mask,
                     const std::vector<Value>& row) {
  if (mask == 0 || (mask & 1ull) != 0) {
    return Status::InvalidArgument("cannot update key column / empty mask");
  }
  if ((mask & ~schema_.AllColumns()) != 0) {
    return Status::InvalidArgument("mask has unknown columns");
  }
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  Range* r = GetRange(RangeOf(rid));
  if (r == nullptr) return Status::NotFound("no such range");
  EpochGuard guard(epochs_);
  return WriteTailVersion(txn, *r, SlotOf(rid), mask, row, false, nullptr);
}

Status Table::Delete(Transaction* txn, Value key) {
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  Range* r = GetRange(RangeOf(rid));
  if (r == nullptr) return Status::NotFound("no such range");
  static const std::vector<Value> kEmpty;
  EpochGuard guard(epochs_);
  Status s = WriteTailVersion(txn, *r, SlotOf(rid), 0, kEmpty, true, nullptr);
  if (s.ok()) stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status Table::WriteTailVersion(Transaction* txn, Range& r, uint32_t slot,
                               ColumnMask mask, const std::vector<Value>& row,
                               bool is_delete, RedoLog::Batch* log_sink) {
  auto& ind = r.indirection[slot];

  // Step 1 of write-write conflict detection: CAS the latch bit
  // (Section 5.1.1). A set latch bit means a concurrent writer.
  uint64_t iv = ind.load(std::memory_order_acquire);
  for (;;) {
    if (IndirLatched(iv)) {
      stats_.ww_aborts.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("write-write conflict (latch)");
    }
    if (ind.compare_exchange_weak(iv, iv | kIndirLatchBit,
                                  std::memory_order_acq_rel)) {
      break;
    }
  }
  uint32_t prev_seq = IndirSeq(iv);

  // Step 2: inspect the start time of the latest version. A chain
  // head below the historic boundary was compressed away: only
  // records with RESOLVED outcomes (stamped commit time or aborted
  // tombstone — the merge prefix scan guarantees it) are ever moved,
  // so such a head cannot belong to an in-flight writer — and the
  // tail page that held it may already be reclaimed, so it must not
  // be read. (Readers that pinned before the compression's retire
  // still read the live page; readers pinned after synchronize with
  // the boundary store through the epoch counter and skip it.)
  uint32_t head_boundary = r.historic_boundary.load(std::memory_order_acquire);
  Value latest_raw;
  if (prev_seq != 0) {
    latest_raw = prev_seq >= head_boundary
                     ? r.updates.Read(prev_seq, kTailStartTime)
                     : Value{1};  // historic ⇒ committed long ago
  } else {
    latest_raw = slot < r.based.load(std::memory_order_acquire)
                     ? BaseMetaValue(r, slot, kBaseStartTime)
                     : r.inserts.Read(slot + 1, kTailStartTime);
  }
  if (IsTxnId(latest_raw) && latest_raw != txn->id()) {
    TransactionManager::StateView view = txn_manager_->GetState(latest_raw);
    if (view.found && (view.state == TxnState::kActive ||
                       view.state == TxnState::kPreCommit)) {
      ind.store(iv, std::memory_order_release);  // release latch
      stats_.ww_aborts.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("write-write conflict (uncommitted version)");
    }
  }

  // Reject updates of deleted records: find the newest non-aborted
  // version and check its delete flag.
  {
    uint32_t boundary = r.historic_boundary.load(std::memory_order_acquire);
    uint32_t s = prev_seq;
    while (s != 0 && s >= boundary &&
           IsAbortedStamp(r.updates.Read(s, kTailStartTime))) {
      s = static_cast<uint32_t>(r.updates.Read(s, kTailIndirection));
    }
    bool deleted = false;
    if (s != 0 && s >= boundary) {
      deleted = IsDeleteRecord(r.updates.Read(s, kTailSchemaEncoding));
    } else if (s != 0) {
      HistoricStore* hist = r.historic.load(std::memory_order_acquire);
      if (hist != nullptr) {
        auto versions = hist->VersionsOf(slot);
        for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
          if (it->seq > s) continue;
          deleted = IsDeleteRecord(it->schema_encoding);
          break;
        }
      }
    } else if (slot < r.based.load(std::memory_order_acquire)) {
      deleted = IsDeleteRecord(BaseMetaValue(r, slot, kBaseSchemaEnc)) &&
                prev_seq == 0;
    } else {
      deleted = IsAbortedStamp(r.inserts.Read(slot + 1, kTailStartTime));
    }
    if (deleted) {
      ind.store(iv, std::memory_order_release);
      return Status::NotFound("record deleted");
    }
  }

  uint64_t ever = r.ever_updated[slot].load(std::memory_order_relaxed);
  ColumnMask newly = mask & ~ever;
  uint32_t back = prev_seq;

  // Pre-image snapshot on the first update of a column (Section 3.1 /
  // Lemma 2): capture the original values so outdated base pages can
  // be discarded after merges without information loss.
  uint32_t snap_seq = 0;
  if (newly != 0) {
    snap_seq = r.updates.ReserveSeq();
    if (snap_seq > kMaxTailSeq) {
      ind.store(iv, std::memory_order_release);
      return Status::Busy("tail sequence space exhausted for range");
    }
    for (BitIter it(newly); it; ++it) {
      r.updates.Write(snap_seq, kTailMetaColumns + static_cast<uint32_t>(*it),
                      BaseDataValue(r, slot, static_cast<ColumnId>(*it)));
    }
    r.updates.Write(snap_seq, kTailIndirection, back);
    r.updates.Write(snap_seq, kTailBaseRid, slot);
    r.updates.Write(snap_seq, kTailSchemaEncoding, newly | kSnapshotFlag);
    back = snap_seq;
  }

  uint32_t new_seq = r.updates.ReserveSeq();
  if (new_seq > kMaxTailSeq) {
    ind.store(iv, std::memory_order_release);
    return Status::Busy("tail sequence space exhausted for range");
  }

  // Cumulative updates (Section 3.1), reset at the TPS high-water mark
  // (Section 4.2, Table 5).
  ColumnMask carry = 0;
  if (config_.cumulative_updates && prev_seq != 0 && !is_delete &&
      prev_seq > r.merged_tps.load(std::memory_order_acquire) &&
      prev_seq >= r.historic_boundary.load(std::memory_order_acquire)) {
    Value prev_raw = r.updates.Read(prev_seq, kTailStartTime);
    Value prev_enc = r.updates.Read(prev_seq, kTailSchemaEncoding);
    // Carry only from versions with a known-good outcome: a stamped
    // commit time or our own (an unstamped foreign txn id may belong
    // to an aborted transaction whose tombstone is still in flight).
    bool prev_trusted =
        !IsAbortedStamp(prev_raw) &&
        (!IsTxnId(prev_raw) || prev_raw == txn->id());
    if (prev_trusted && !IsSnapshotRecord(prev_enc) &&
        !IsDeleteRecord(prev_enc)) {
      carry = SchemaColumns(prev_enc) & ~mask;
    }
  }

  // Same-transaction stacking: if the new record covers every column
  // of the previous own record, the old one is superseded and readers
  // skip it even post-commit (Section 3.1). Written under the latch;
  // the record is still invisible to others (our txn is uncommitted).
  if (prev_seq != 0 && latest_raw == txn->id()) {
    Value prev_enc2 = r.updates.Read(prev_seq, kTailSchemaEncoding);
    ColumnMask prev_cols = SchemaColumns(prev_enc2);
    if (!IsSnapshotRecord(prev_enc2) &&
        ((mask | carry) & prev_cols) == prev_cols) {
      r.updates.Write(prev_seq, kTailSchemaEncoding,
                      prev_enc2 | kSupersededFlag);
    }
  }

  uint64_t enc = mask | carry | (is_delete ? kDeleteFlag : 0);
  for (BitIter it(carry); it; ++it) {
    r.updates.Write(new_seq, kTailMetaColumns + static_cast<uint32_t>(*it),
                    r.updates.Read(prev_seq, kTailMetaColumns +
                                                 static_cast<uint32_t>(*it)));
  }
  if (!is_delete) {
    for (BitIter it(mask); it; ++it) {
      r.updates.Write(new_seq, kTailMetaColumns + static_cast<uint32_t>(*it),
                      row[*it]);
    }
  }
  r.updates.Write(new_seq, kTailIndirection, back);
  r.updates.Write(new_seq, kTailBaseRid, slot);
  r.updates.Write(new_seq, kTailSchemaEncoding, enc);

  // The pre-image snapshot inherits the old version's start time
  // (Table 2: t1 carries b2's 13:04).
  Value base_start = 0;
  if (snap_seq != 0) {
    base_start = slot < r.based.load(std::memory_order_acquire)
                     ? BaseMetaValue(r, slot, kBaseStartTime)
                     : r.inserts.Read(slot + 1, kTailStartTime);
  }

  // Publish start times BEFORE the log append; the new version carries
  // our txn id until the outcome is stamped. The order is a durability
  // protocol invariant: a checkpoint takes its log watermark and then
  // captures memory, so any record whose log append lies at or below
  // the watermark must already be published — records still unpublished
  // at capture are guaranteed to replay from the retained log tail.
  if (snap_seq != 0) {
    r.updates.StartTimeSlot(snap_seq)->store(base_start,
                                             std::memory_order_release);
    txn->writeset().push_back(
        WriteEntry{r.id, slot, snap_seq, /*is_insert=*/false, 0, this});
  }
  r.updates.StartTimeSlot(new_seq)->store(txn->id(),
                                          std::memory_order_release);

  if (log_ != nullptr) {
    if (snap_seq != 0) {
      LogTailAppend(r, snap_seq, false, base_start, txn->id(), log_sink);
    }
    LogTailAppend(r, new_seq, false, txn->id(), txn->id(), log_sink);
  }

  if (mask != 0) {
    r.ever_updated[slot].fetch_or(mask, std::memory_order_relaxed);
  }

  // Secondary index maintenance: add new postings (old postings are
  // removed lazily, Section 3.1 footnote 3).
  if (!is_delete) {
    SpinGuard sg(secondary_latch_);
    for (auto& s : secondaries_) {
      if (mask & (1ull << s.col)) {
        s.index->Add(row[s.col], r.id * config_.range_size + slot);
      }
    }
  }

  txn->writeset().push_back(
      WriteEntry{r.id, slot, new_seq, /*is_insert=*/false, 0, this});

  // Release the latch and publish the new chain head: the only
  // in-place update in the architecture.
  ind.store(new_seq, std::memory_order_release);

  stats_.updates.fetch_add(1, std::memory_order_relaxed);
  MaybeScheduleMerge(r);
  return Status::OK();
}

void Table::LogTailAppend(const Range& r, uint32_t seq, bool insert,
                          Value start_raw, TxnId txn_id,
                          RedoLog::Batch* log_sink) {
  const TailSegment& seg = insert ? r.inserts : r.updates;
  LogRecord rec;
  rec.type =
      insert ? LogRecordType::kInsertAppend : LogRecordType::kTailAppend;
  rec.txn_id = txn_id;
  rec.range_id = r.id;
  rec.seq = seq;
  rec.base_slot = static_cast<uint32_t>(seg.Read(seq, kTailBaseRid));
  rec.backptr = static_cast<uint32_t>(seg.Read(seq, kTailIndirection));
  rec.schema_encoding = seg.Read(seq, kTailSchemaEncoding);
  rec.start_raw = start_raw;
  ColumnMask cols = SchemaColumns(rec.schema_encoding);
  rec.mask = cols;
  for (BitIter it(cols); it; ++it) {
    rec.values.push_back(
        seg.Read(seq, kTailMetaColumns + static_cast<uint32_t>(*it)));
  }
  if (log_sink != nullptr) {
    log_sink->Add(rec);
  } else {
    log_->Append(rec);
  }
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status Table::Read(Transaction* txn, Value key, ColumnMask mask,
                   std::vector<Value>* out) {
  // Unknown mask bits are ignored, so ~0ull reads every column — and
  // a hostile mask (e.g. from the network service) cannot index past
  // the column store.
  mask &= schema_.AllColumns();
  out->assign(schema_.num_columns(), kNull);
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  Range* r = GetRange(RangeOf(rid));
  if (r == nullptr) return Status::NotFound("no such range");
  EpochGuard guard(epochs_);
  Timestamp as_of = txn->isolation() == IsolationLevel::kReadCommitted
                        ? kMaxTimestamp
                        : txn->begin_time();
  ReadSpec spec{as_of, txn, /*speculative=*/false};
  uint32_t observed = 0;
  Status s = ResolveRecord(*r, SlotOf(rid), spec, mask, out, &observed);
  txn->readset().push_back(
      ReadEntry{r->id, SlotOf(rid), observed, /*speculative=*/false, 0, this});
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status Table::SpeculativeRead(Transaction* txn, Value key, ColumnMask mask,
                              std::vector<Value>* out) {
  mask &= schema_.AllColumns();  // unknown bits are ignored (see Read)
  out->assign(schema_.num_columns(), kNull);
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  Range* r = GetRange(RangeOf(rid));
  if (r == nullptr) return Status::NotFound("no such range");
  EpochGuard guard(epochs_);
  Timestamp as_of = txn->isolation() == IsolationLevel::kReadCommitted
                        ? kMaxTimestamp
                        : txn->begin_time();
  ReadSpec spec{as_of, txn, /*speculative=*/true};
  size_t deps_before = txn->commit_dependencies().size();
  uint32_t observed = 0;
  Status s = ResolveRecord(*r, SlotOf(rid), spec, mask, out, &observed);
  bool speculated = txn->commit_dependencies().size() > deps_before;
  TxnId dep = speculated ? txn->commit_dependencies().back() : 0;
  txn->readset().push_back(
      ReadEntry{r->id, SlotOf(rid), observed, speculated, dep, this});
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status Table::ReadAsOf(Value key, Timestamp as_of, ColumnMask mask,
                       std::vector<Value>* out) {
  mask &= schema_.AllColumns();  // unknown bits are ignored (see Read)
  out->assign(schema_.num_columns(), kNull);
  Rid rid = primary_.Get(key);
  if (rid == kInvalidRid) return Status::NotFound("no such key");
  Range* r = GetRange(RangeOf(rid));
  if (r == nullptr) return Status::NotFound("no such range");
  EpochGuard guard(epochs_);
  ReadSpec spec{as_of, nullptr, /*speculative=*/false};
  return ResolveRecord(*r, SlotOf(rid), spec, mask, out, nullptr);
}

// ---------------------------------------------------------------------------
// Batched point operations
// ---------------------------------------------------------------------------

Status Table::MultiRead(Txn& txn, const std::vector<Value>& keys,
                        ColumnMask mask, std::vector<std::vector<Value>>* rows,
                        std::vector<Status>* statuses) {
  LSTORE_RETURN_IF_ERROR(CheckActive(txn));
  mask &= schema_.AllColumns();  // unknown bits are ignored (see Read)
  Transaction* t = txn.raw();
  rows->assign(keys.size(), {});
  if (statuses != nullptr) statuses->assign(keys.size(), Status::OK());
  // One sharded probe pass for the whole batch.
  std::vector<Rid> rids(keys.size());
  primary_.MultiGet(keys.data(), keys.size(), rids.data());
  EpochGuard guard(epochs_);
  Timestamp as_of = t->isolation() == IsolationLevel::kReadCommitted
                        ? kMaxTimestamp
                        : t->begin_time();
  Status first = Status::OK();
  for (size_t i = 0; i < keys.size(); ++i) {
    Status s;
    if (rids[i] == kInvalidRid) {
      s = Status::NotFound("no such key");
    } else {
      Range* r = GetRange(RangeOf(rids[i]));
      if (r == nullptr) {
        s = Status::NotFound("no such range");
      } else {
        std::vector<Value>& out = (*rows)[i];
        out.assign(schema_.num_columns(), kNull);
        ReadSpec spec{as_of, t, /*speculative=*/false};
        uint32_t observed = 0;
        uint32_t slot = SlotOf(rids[i]);
        s = ResolveRecord(*r, slot, spec, mask, &out, &observed);
        t->readset().push_back(
            ReadEntry{r->id, slot, observed, /*speculative=*/false, 0, this});
        if (!s.ok()) out.clear();
      }
    }
    if (!s.ok() && first.ok()) first = s;
    if (statuses != nullptr) (*statuses)[i] = s;
  }
  stats_.reads.fetch_add(keys.size(), std::memory_order_relaxed);
  return first;
}

Status Table::InsertBatch(Txn& txn, const std::vector<std::vector<Value>>& rows) {
  LSTORE_RETURN_IF_ERROR(CheckActive(txn));
  Transaction* t = txn.raw();
  RedoLog::Batch recs;
  RedoLog::Batch* sink = log_ != nullptr ? &recs : nullptr;
  EpochGuard guard(epochs_);
  Status s = Status::OK();
  for (const std::vector<Value>& row : rows) {
    s = InsertImpl(t, row, sink);
    if (!s.ok()) break;
  }
  // ONE frame for the whole batch; the publish-before-log invariant
  // holds because every Start Time was published above.
  if (sink != nullptr && !recs.empty()) log_->AppendBatch(recs);
  return s;
}

Status Table::UpdateBatch(Txn& txn, const std::vector<Value>& keys,
                          ColumnMask mask,
                          const std::vector<std::vector<Value>>& rows) {
  if (keys.size() != rows.size()) {
    return Status::InvalidArgument("keys/rows arity mismatch");
  }
  if (mask == 0 || (mask & 1ull) != 0) {
    return Status::InvalidArgument("cannot update key column / empty mask");
  }
  if ((mask & ~schema_.AllColumns()) != 0) {
    return Status::InvalidArgument("mask has unknown columns");
  }
  for (const std::vector<Value>& row : rows) {
    if (row.size() != schema_.num_columns()) {
      return Status::InvalidArgument("row arity mismatch");
    }
  }
  LSTORE_RETURN_IF_ERROR(CheckActive(txn));
  Transaction* t = txn.raw();
  std::vector<Rid> rids(keys.size());
  primary_.MultiGet(keys.data(), keys.size(), rids.data());
  RedoLog::Batch recs;
  RedoLog::Batch* sink = log_ != nullptr ? &recs : nullptr;
  EpochGuard guard(epochs_);
  Status s = Status::OK();
  for (size_t i = 0; i < keys.size(); ++i) {
    if (rids[i] == kInvalidRid) {
      s = Status::NotFound("no such key");
      break;
    }
    Range* r = GetRange(RangeOf(rids[i]));
    if (r == nullptr) {
      s = Status::NotFound("no such range");
      break;
    }
    s = WriteTailVersion(t, *r, SlotOf(rids[i]), mask, rows[i], false, sink);
    if (!s.ok()) break;
  }
  if (sink != nullptr && !recs.empty()) log_->AppendBatch(recs);
  return s;
}

Status Table::DeleteBatch(Txn& txn, const std::vector<Value>& keys) {
  LSTORE_RETURN_IF_ERROR(CheckActive(txn));
  Transaction* t = txn.raw();
  std::vector<Rid> rids(keys.size());
  primary_.MultiGet(keys.data(), keys.size(), rids.data());
  RedoLog::Batch recs;
  RedoLog::Batch* sink = log_ != nullptr ? &recs : nullptr;
  static const std::vector<Value> kEmpty;
  EpochGuard guard(epochs_);
  Status s = Status::OK();
  for (size_t i = 0; i < keys.size(); ++i) {
    if (rids[i] == kInvalidRid) {
      s = Status::NotFound("no such key");
      break;
    }
    Range* r = GetRange(RangeOf(rids[i]));
    if (r == nullptr) {
      s = Status::NotFound("no such range");
      break;
    }
    s = WriteTailVersion(t, *r, SlotOf(rids[i]), 0, kEmpty, true, sink);
    if (!s.ok()) break;
    stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  }
  if (sink != nullptr && !recs.empty()) log_->AppendBatch(recs);
  return s;
}

// ---------------------------------------------------------------------------
// Scans live in core/query.cc (Query is the sole scan surface).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Secondary indexes
// ---------------------------------------------------------------------------

void Table::CreateSecondaryIndex(ColumnId col) {
  auto index = std::make_unique<SecondaryIndex>();
  // Backfill from current visible data.
  NewQuery()
      .Project((1ull << col) | 1ull)
      .AsOf(kMaxTimestamp)
      .Workers(1)
      .Visit([&](Value key, const std::vector<Value>& row) {
        Rid rid = primary_.Get(key);
        if (rid != kInvalidRid) index->Add(row[col], rid);
      });
  SpinGuard sg(secondary_latch_);
  secondaries_.push_back(SecondaryEntry{col, std::move(index)});
}

// ---------------------------------------------------------------------------
// Maintenance entry points (bodies in merge.cc / historic.cc)
// ---------------------------------------------------------------------------

void Table::MaybeScheduleMerge(Range& r) {
  if (!config_.enable_merge_thread || merge_manager_ == nullptr) return;
  uint32_t unmerged =
      r.updates.LastSeq() - r.merged_tps.load(std::memory_order_acquire);
  uint32_t unbased = r.occupied.load(std::memory_order_acquire) -
                     r.based.load(std::memory_order_acquire);
  bool full = r.occupied.load(std::memory_order_acquire) >=
              config_.range_size;
  if (unmerged >= config_.merge_threshold ||
      unbased >= std::min(config_.range_size, config_.merge_threshold) ||
      (full && unbased > 0)) {
    bool expected = false;
    if (r.queued.compare_exchange_strong(expected, true)) {
      merge_manager_->Enqueue(r.id);
    }
  }
}

bool Table::MergeRangeNow(uint64_t range_id) {
  Range* r = GetRange(range_id);
  if (r == nullptr) return false;
  return RunUpdateMerge(*r, schema_.AllColumns(), true);
}

bool Table::MergeRangeColumns(uint64_t range_id, ColumnMask cols) {
  Range* r = GetRange(range_id);
  if (r == nullptr) return false;
  return RunUpdateMerge(*r, cols, false);
}

bool Table::InsertMergeNow(uint64_t range_id) {
  Range* r = GetRange(range_id);
  if (r == nullptr) return false;
  return RunInsertMerge(*r);
}

size_t Table::CompressHistoricNow(uint64_t range_id) {
  Range* r = GetRange(range_id);
  if (r == nullptr) return 0;
  return RunHistoricCompression(*r);
}

void Table::FlushAll() {
  uint64_t nranges = num_ranges();
  for (uint64_t i = 0; i < nranges; ++i) {
    Range* r = GetRange(i);
    if (r == nullptr) continue;
    RunInsertMerge(*r);
    RunUpdateMerge(*r, schema_.AllColumns(), true);
  }
  epochs_.TryReclaim();
}

void Table::WaitForMergeQueue() {
  if (merge_manager_) merge_manager_->Drain();
}

// ---------------------------------------------------------------------------
// Recovery (Section 5.1.3): see src/checkpoint/recovery.cc for
// RecoverFromLog / RecoverDurable / ReplayAndRebuild.
// ---------------------------------------------------------------------------

}  // namespace lstore
