// The single commit pipeline (Section 5.1.1 / 5.1.3).
//
// One code path serves single-table commits (Table::CommitTxn is a
// thin wrapper passing {this}) and cross-table transactions
// (Database::CommitTxn passes every registered table). The pipeline
// filters the actual participants out of the transaction's read and
// write sets, so a database-wide commit touches only the tables the
// transaction used:
//
//   1. acquire the commit time, enter pre-commit,
//   2. validate each read participant's share of the readset,
//   3. reach the durability point:
//        - one logged writer: a commit record in that table's log
//          (the existing fast path),
//        - several logged writers: payload records stay in the table
//          logs WITHOUT per-table commit records; ONE record in the
//          database commit log is the whole transaction's commit
//          point, so a crash can never split it across tables,
//      both flushed through the group-commit queue when the engine
//      has one, sharing fsyncs with concurrent committers,
//   4. flip the state in the shared manager — the in-memory commit
//      point,
//   5. stamp Start Time slots and retire the manager entry.

#ifndef LSTORE_CORE_COMMIT_PIPELINE_H_
#define LSTORE_CORE_COMMIT_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include <memory>

#include "common/status.h"
#include "log/commit_log.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "txn/transaction.h"

namespace lstore {

class Table;
class TransactionManager;

/// Group-commit stage: concurrent committers enqueue their durability
/// work; the first waiting request becomes the batch leader, which
/// flushes every distinct table log touched by the batch ONCE, appends
/// the batch's commit-log records, and flushes the commit log ONCE —
/// so N concurrent commits across T tables cost T+1 fsyncs, not N*(T+1).
/// A lone leader waits up to `window_us` for followers to join
/// (DurabilityOptions::group_commit_window_us).
class GroupCommitQueue {
 public:
  /// `registry` (optional) receives the stage metrics of every batch:
  /// per-request queue wait, the leader's table-log flush fan-out and
  /// commit-log flush durations, and batch sizes.
  GroupCommitQueue(CommitLog* commit_log, uint64_t window_us, bool sync,
                   MetricsRegistry* registry = nullptr)
      : commit_log_(commit_log), window_us_(window_us), sync_(sync) {
    if (registry != nullptr) {
      queue_wait_ns_ = registry->GetHistogram(
          "lstore_commit_queue_wait_ns",
          "Group-commit queue wait before the batch leader ran (ns)");
      fanout_flush_ns_ = registry->GetHistogram(
          "lstore_commit_fanout_flush_ns",
          "Leader's table-log flush fan-out per batch (ns)");
      commit_log_flush_ns_ = registry->GetHistogram(
          "lstore_commit_log_fsync_ns",
          "Leader's commit-log flush (the commit point) per batch (ns)");
      batch_size_ = registry->GetHistogram(
          "lstore_group_commit_batch_size", "Commits per group-commit batch");
      batches_total_ = registry->GetCounter(
          "lstore_group_commit_batches_total", "Group-commit batches led");
    }
  }

  /// Make `txn` durable: flush `writers`' logs (payloads, plus the
  /// per-table commit record a single-table commit already appended);
  /// when `cross`, additionally append + flush the one commit-log
  /// record that commits the transaction on every participant. The
  /// table-log flushes ALWAYS precede the commit-log flush, so a
  /// durable commit record implies durable payloads. Returns once the
  /// transaction's durability point is reached (or failed).
  Status Commit(Transaction* txn, Timestamp commit_time,
                const std::vector<Table*>& writers, bool cross);

  /// Append + flush ONE authoritative abort marker for a cross-table
  /// transaction whose commit-log flush failed: the commit record may
  /// or may not have reached the disk, and per-table abort records
  /// could themselves land on only a subset of participants — a single
  /// marker here decides the outcome for all of them at recovery
  /// (best effort: if this flush also fails and neither record
  /// persists, recovery aborts the transaction everywhere anyway).
  void AbortCross(TxnId txn_id);

  /// Registers the "group_commit" heartbeat: the leader marks itself
  /// busy for each batch's durability sequence, so a leader wedged in
  /// an fsync shows up as slow/stalled instead of merely idle.
  void RegisterHeartbeat(HealthRegistry* registry) {
    hb_ = registry->Register("group_commit");
  }

  /// Held by the leader for the whole durability sequence of a batch.
  /// The checkpoint quiesces through it: taking this mutex while
  /// recording log watermarks guarantees no commit is mid-flight
  /// between its table-log flushes and its commit-log flush.
  std::mutex& window_mu() { return window_mu_; }

  /// Number of leader-processed batches (tests: batches < commits
  /// proves sharing).
  uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    std::vector<Table*> writers;
    CommitLogRecord record;  ///< prepared when `cross`
    bool cross = false;
    bool done = false;
    Status result;
    uint64_t enqueue_ns = 0;  ///< queue-wait stamp (0 = untraced build)
    /// Submitter's request trace id (obs/span.h), captured at Commit()
    /// entry: the batch leader records this request's gc_queue_wait /
    /// log_flush / commit_fsync spans on the submitter's behalf —
    /// durability work happens on the leader's thread, but latency
    /// belongs to the request's timeline. 0 = untraced.
    uint64_t trace_id = 0;
  };

  /// Leader body: runs the shared durability sequence for `batch`
  /// under window_mu_, filling each request's result.
  void ProcessBatch(const std::vector<Request*>& batch);

  CommitLog* commit_log_;
  const uint64_t window_us_;
  const bool sync_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool leader_active_ = false;
  std::mutex window_mu_;
  std::atomic<uint64_t> batches_{0};
  std::shared_ptr<Heartbeat> hb_;  ///< "group_commit" (null until wired)

  /// Registry handles (null when no registry was wired).
  Histogram* queue_wait_ns_ = nullptr;
  Histogram* fanout_flush_ns_ = nullptr;
  Histogram* commit_log_flush_ns_ = nullptr;
  Histogram* batch_size_ = nullptr;
  Counter* batches_total_ = nullptr;
};

/// Commit `txn` across whichever of `tables` it actually read or
/// wrote. With several logged writers the commit-log record appended
/// via `group` is the single atomic durability point; `group` may be
/// null (standalone tables, in-memory databases), falling back to
/// per-table commit records flushed inline.
Status CommitAcrossTables(TransactionManager& tm, Transaction* txn,
                          const std::vector<Table*>& tables,
                          GroupCommitQueue* group = nullptr);

/// Abort `txn`: append abort records to write participants' logs and
/// tombstone the writeset (Section 5.1.3 — no physical removal).
/// `durable_abort` flushes the abort records — required only when the
/// durability step may already have flushed a commit record for this
/// transaction (replay treats the later abort as authoritative, so it
/// must not die in the buffer); ordinary aborts have no commit record
/// anywhere and replay aborts them regardless.
void AbortAcrossTables(TransactionManager& tm, Transaction* txn,
                       const std::vector<Table*>& tables,
                       bool durable_abort = false);

}  // namespace lstore

#endif  // LSTORE_CORE_COMMIT_PIPELINE_H_
