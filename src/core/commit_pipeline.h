// The single commit pipeline (Section 5.1.1 / 5.1.3).
//
// One code path serves single-table commits (Table::CommitTxn is a
// thin wrapper passing {this}) and cross-table transactions
// (Database::CommitTxn passes every registered table). The pipeline
// filters the actual participants out of the transaction's read and
// write sets, so a database-wide commit touches only the tables the
// transaction used:
//
//   1. acquire the commit time, enter pre-commit,
//   2. validate each read participant's share of the readset,
//   3. append + flush a commit record to each write participant's log,
//   4. flip the state in the shared manager — the atomic commit point,
//   5. stamp Start Time slots and retire the manager entry.

#ifndef LSTORE_CORE_COMMIT_PIPELINE_H_
#define LSTORE_CORE_COMMIT_PIPELINE_H_

#include <vector>

#include "common/status.h"
#include "txn/transaction.h"

namespace lstore {

class Table;
class TransactionManager;

/// Commit `txn` across whichever of `tables` it actually read or
/// wrote. The state flip in `tm` is the single atomic commit point
/// for every participant.
Status CommitAcrossTables(TransactionManager& tm, Transaction* txn,
                          const std::vector<Table*>& tables);

/// Abort `txn`: append abort records to write participants' logs and
/// tombstone the writeset (Section 5.1.3 — no physical removal).
void AbortAcrossTables(TransactionManager& tm, Transaction* txn,
                       const std::vector<Table*>& tables);

}  // namespace lstore

#endif  // LSTORE_CORE_COMMIT_PIPELINE_H_
