// Read-optimized, immutable column segment.
//
// The merge process (Section 4.1.1, Step 3) writes consolidated
// values into new read-only pages and "any compression algorithm can
// be applied on the consolidated pages (on column basis)". This class
// owns one column of one update range in its read-optimized form and
// picks the cheapest encoding (plain / dictionary / RLE) per segment.

#ifndef LSTORE_STORAGE_COMPRESSED_COLUMN_H_
#define LSTORE_STORAGE_COMPRESSED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "storage/compression/dictionary.h"
#include "storage/compression/rle.h"

namespace lstore {

class CompressedColumn {
 public:
  enum class Encoding { kPlain, kDictionary, kRle };

  /// Build the read-optimized form of `values`. When `try_compress` is
  /// false (or no codec wins), the plain layout is kept.
  static std::unique_ptr<CompressedColumn> Build(std::vector<Value> values,
                                                 bool try_compress);

  Value Get(size_t i) const {
    switch (encoding_) {
      case Encoding::kPlain: return plain_[i];
      case Encoding::kDictionary: return dict_.Get(i);
      case Encoding::kRle: return rle_.Get(i);
    }
    return kNull;
  }

  size_t size() const { return size_; }
  Encoding encoding() const { return encoding_; }
  size_t byte_size() const;

 private:
  CompressedColumn() = default;

  Encoding encoding_ = Encoding::kPlain;
  size_t size_ = 0;
  std::vector<Value> plain_;
  DictionaryColumn dict_;
  RleColumn rle_;
};

}  // namespace lstore

#endif  // LSTORE_STORAGE_COMPRESSED_COLUMN_H_
