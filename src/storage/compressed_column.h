// Read-optimized, immutable column segment.
//
// The merge process (Section 4.1.1, Step 3) writes consolidated
// values into new read-only pages and "any compression algorithm can
// be applied on the consolidated pages (on column basis)". This class
// owns one column of one update range in its read-optimized form and
// picks the cheapest encoding (plain / dictionary / RLE) per segment.

#ifndef LSTORE_STORAGE_COMPRESSED_COLUMN_H_
#define LSTORE_STORAGE_COMPRESSED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "storage/compression/dictionary.h"
#include "storage/compression/rle.h"

namespace lstore {

class CompressedColumn {
 public:
  enum class Encoding { kPlain, kDictionary, kRle };

  /// Build the read-optimized form of `values`. When `try_compress` is
  /// false (or no codec wins), the plain layout is kept.
  static std::unique_ptr<CompressedColumn> Build(std::vector<Value> values,
                                                 bool try_compress);

  Value Get(size_t i) const {
    switch (encoding_) {
      case Encoding::kPlain: return plain_[i];
      case Encoding::kDictionary: return dict_.Get(i);
      case Encoding::kRle: return rle_.Get(i);
    }
    return kNull;
  }

  /// Monotone sequential reader: positions passed to At() must be
  /// non-decreasing. Scans (Query) decode runs incrementally — an RLE
  /// segment costs O(1) amortized per slot instead of O(log #runs) —
  /// which is where predicate/projection pushdown into the segment
  /// pays off.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const CompressedColumn* col) : col_(col) {}

    Value At(size_t i) {
      switch (col_->encoding_) {
        case Encoding::kPlain:
          return col_->plain_[i];
        case Encoding::kDictionary:
          return col_->dict_.Get(i);
        case Encoding::kRle: {
          const RleColumn& r = col_->rle_;
          while (run_ + 1 < r.run_count() && i >= r.run_start(run_ + 1)) {
            ++run_;
          }
          return r.run_value(run_);
        }
      }
      return kNull;
    }

   private:
    const CompressedColumn* col_ = nullptr;
    size_t run_ = 0;
  };

  Cursor cursor() const { return Cursor(this); }

  size_t size() const { return size_; }
  Encoding encoding() const { return encoding_; }
  size_t byte_size() const;

 private:
  CompressedColumn() = default;

  Encoding encoding_ = Encoding::kPlain;
  size_t size_ = 0;
  std::vector<Value> plain_;
  DictionaryColumn dict_;
  RleColumn rle_;
};

}  // namespace lstore

#endif  // LSTORE_STORAGE_COMPRESSED_COLUMN_H_
