// Append-only tail storage for one update range.
//
// Section 2.1/3.1: "for every range of records, and for each updated
// column within the range, we maintain a set of append-only pages to
// store the latest updates". Key properties implemented here:
//  * strictly append-only, write-once (values survive aborts),
//  * lazy tail-page allocation: a column's pages exist only once the
//    column is updated within the range; absent pages read as the
//    special null value ∅,
//  * tail records span aligned columns: record `seq` occupies slot
//    `seq % page_slots` of page `seq / page_slots` in every column,
//  * meta-data columns mirror base pages (Section 2.2): Indirection
//    (backpointer), Start Time, Schema Encoding, Base RID.
//
// The same structure backs the *table-level tail pages* of insert
// ranges (Section 3.2), where all columns are materialized.

#ifndef LSTORE_STORAGE_TAIL_SEGMENT_H_
#define LSTORE_STORAGE_TAIL_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/latch.h"
#include "common/types.h"
#include "storage/page.h"

namespace lstore {

/// Physical positions of the tail meta-data columns; data column `c`
/// lives at physical index kTailMetaColumns + c.
enum TailMetaColumn : uint32_t {
  kTailIndirection = 0,  ///< backpointer: previous version's seq (0 = base)
  kTailStartTime = 1,    ///< commit time, txn id, or aborted stamp
  kTailSchemaEncoding = 2,
  kTailBaseRid = 3,      ///< slot of the base record within the range
};
inline constexpr uint32_t kTailMetaColumns = 4;

/// Lock-free-readable, lazily grown list of pages for one column.
/// Growth uses copy-on-write of the pointer directory so readers
/// never take a latch (Section 5.1.2).
class LazyPageList {
 public:
  LazyPageList() = default;
  ~LazyPageList();
  LazyPageList(const LazyPageList&) = delete;
  LazyPageList& operator=(const LazyPageList&) = delete;

  /// Page at index, or nullptr if never allocated (⇒ all slots ∅).
  Page* GetPage(uint32_t idx) const;

  /// Allocate (if needed) and return the page at index.
  Page* EnsurePage(uint32_t idx, uint32_t slots, Value fill = kNull);

  /// Number of allocated pages (for stats).
  size_t allocated_pages() const;

  /// Drop pages with index < first_kept, freeing their memory. Used
  /// after historic compression (Section 4.3). Caller must guarantee
  /// no readers can reach them (epoch-protected).
  void DropPagesBelow(uint32_t first_kept);

 private:
  struct Dir {
    explicit Dir(uint32_t cap) : capacity(cap), pages(new std::atomic<Page*>[cap]) {
      for (uint32_t i = 0; i < cap; ++i) {
        pages[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    uint32_t capacity;
    std::unique_ptr<std::atomic<Page*>[]> pages;
  };

  std::atomic<Dir*> dir_{nullptr};
  mutable SpinLatch grow_latch_;
  std::vector<std::unique_ptr<Dir>> graveyard_;  // retired directories
  std::vector<std::unique_ptr<Dir>> live_keeper_;
};

class TailSegment {
 public:
  TailSegment(uint32_t num_data_columns, uint32_t page_slots);

  /// Reserve the next tail sequence number (first is 1).
  uint32_t ReserveSeq() {
    return next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Highest reserved seq so far.
  uint32_t LastSeq() const {
    return next_seq_.load(std::memory_order_acquire);
  }

  /// Fast-forward the sequence counter (log recovery replays records
  /// at their original sequence numbers).
  void AdvanceSeq(uint32_t seq) {
    uint32_t cur = next_seq_.load(std::memory_order_relaxed);
    while (cur < seq &&
           !next_seq_.compare_exchange_weak(cur, seq,
                                            std::memory_order_relaxed)) {
    }
  }

  /// Write `v` into physical column `col` of record `seq`, allocating
  /// the page lazily on first touch of the column.
  void Write(uint32_t seq, uint32_t col, Value v);

  /// Read physical column `col` of record `seq`; ∅ if the column was
  /// never materialized for that page.
  Value Read(uint32_t seq, uint32_t col) const;

  /// Atomic Start Time slot for lazy commit-time stamping (Section
  /// 5.1.1: "Swapping the transaction ID with commit time is done
  /// lazily by future readers").
  std::atomic<Value>* StartTimeSlot(uint32_t seq);

  uint32_t num_data_columns() const { return num_data_columns_; }
  uint32_t page_slots() const { return page_slots_; }
  uint32_t num_physical_columns() const {
    return kTailMetaColumns + num_data_columns_;
  }

  size_t allocated_pages() const;

  /// Free tail pages that only contain records with seq < first_kept
  /// (post historic-compression reclamation).
  void DropRecordsBelow(uint32_t first_kept_seq);

 private:
  uint32_t PageIndex(uint32_t seq) const { return (seq - 1) / page_slots_; }
  uint32_t SlotIndex(uint32_t seq) const { return (seq - 1) % page_slots_; }

  uint32_t num_data_columns_;
  uint32_t page_slots_;
  std::atomic<uint32_t> next_seq_{0};
  std::vector<LazyPageList> columns_;  // size = physical columns
};

}  // namespace lstore

#endif  // LSTORE_STORAGE_TAIL_SEGMENT_H_
