#include "storage/compressed_column.h"

#include <unordered_set>
#include <utility>

namespace lstore {

std::unique_ptr<CompressedColumn> CompressedColumn::Build(
    std::vector<Value> values, bool try_compress) {
  auto col = std::unique_ptr<CompressedColumn>(new CompressedColumn());
  col->size_ = values.size();
  if (!try_compress || values.empty()) {
    col->plain_ = std::move(values);
    return col;
  }

  const size_t plain_bytes = values.size() * sizeof(Value);

  // Count runs and (approximately) distinct values in one pass.
  size_t runs = 0;
  std::unordered_set<Value> distinct;
  bool too_many_distinct = false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || values[i] != values[i - 1]) ++runs;
    if (!too_many_distinct) {
      distinct.insert(values[i]);
      // Dictionary only pays off when codes are clearly narrower.
      if (distinct.size() > values.size() / 4 + 1) too_many_distinct = true;
    }
  }

  const size_t rle_bytes = runs * 2 * sizeof(uint64_t);
  if (rle_bytes * 2 <= plain_bytes) {
    col->encoding_ = Encoding::kRle;
    col->rle_ = RleColumn(values);
    return col;
  }
  if (!too_many_distinct) {
    DictionaryColumn dict(values);
    if (dict.byte_size() < plain_bytes / 2) {
      col->encoding_ = Encoding::kDictionary;
      col->dict_ = std::move(dict);
      return col;
    }
  }
  col->plain_ = std::move(values);
  return col;
}

size_t CompressedColumn::byte_size() const {
  switch (encoding_) {
    case Encoding::kPlain: return plain_.size() * sizeof(Value);
    case Encoding::kDictionary: return dict_.byte_size();
    case Encoding::kRle: return rle_.byte_size();
  }
  return 0;
}

}  // namespace lstore
