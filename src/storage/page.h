// Fixed-size columnar page.
//
// A page holds `capacity` 64-bit slots of a single column (Section
// 2.1: storage is natively columnar, and tail pages "directly mirror
// the structure and the schema of base pages"). Slots are atomic so
// that the same page type serves:
//  * read-only base pages (plain relaxed loads),
//  * append-only tail pages (write-once slots, published by the
//    tail segment's sequence counter),
//  * the in-place-updated Indirection and Start Time slots.
//
// Storage hierarchy note: this atomic page type backs the RESIDENT
// tier only — tail segments and the Indirection column, which are
// mutable and must stay in memory. The read-optimized base segments
// (storage/compressed_column.h) sit one tier below: immutable between
// merges, buffer-managed (src/buffer/), and demand-paged from
// checkpoint segment stores so a table's base footprint can exceed
// RAM.

#ifndef LSTORE_STORAGE_PAGE_H_
#define LSTORE_STORAGE_PAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.h"

namespace lstore {

class Page {
 public:
  /// Creates a page with all slots initialized to `fill` (tail pages
  /// pre-assign the special null value ∅, Section 2.1).
  explicit Page(uint32_t capacity, Value fill = kNull);

  uint32_t capacity() const { return capacity_; }

  Value Get(uint32_t slot) const {
    return slots_[slot].load(std::memory_order_acquire);
  }
  void Set(uint32_t slot, Value v) {
    slots_[slot].store(v, std::memory_order_release);
  }

  /// CAS for in-place-updated meta columns (Indirection, lazy commit-
  /// time stamping of Start Time).
  bool CompareAndSwap(uint32_t slot, Value& expected, Value desired) {
    return slots_[slot].compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel);
  }

  std::atomic<Value>& AtomicSlot(uint32_t slot) { return slots_[slot]; }

 private:
  uint32_t capacity_;
  std::unique_ptr<std::atomic<Value>[]> slots_;
};

static_assert(std::atomic<Value>::is_always_lock_free,
              "L-Store requires lock-free 64-bit atomics");

}  // namespace lstore

#endif  // LSTORE_STORAGE_PAGE_H_
