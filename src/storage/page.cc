#include "storage/page.h"

namespace lstore {

Page::Page(uint32_t capacity, Value fill)
    : capacity_(capacity),
      slots_(std::make_unique<std::atomic<Value>[]>(capacity)) {
  for (uint32_t i = 0; i < capacity; ++i) {
    slots_[i].store(fill, std::memory_order_relaxed);
  }
}

}  // namespace lstore
