#include "storage/tail_segment.h"

namespace lstore {

LazyPageList::~LazyPageList() {
  Dir* d = dir_.load(std::memory_order_acquire);
  if (d != nullptr) {
    for (uint32_t i = 0; i < d->capacity; ++i) {
      delete d->pages[i].load(std::memory_order_relaxed);
    }
  }
  // Directories themselves are owned by live_keeper_/graveyard_.
}

Page* LazyPageList::GetPage(uint32_t idx) const {
  Dir* d = dir_.load(std::memory_order_acquire);
  if (d == nullptr || idx >= d->capacity) return nullptr;
  return d->pages[idx].load(std::memory_order_acquire);
}

Page* LazyPageList::EnsurePage(uint32_t idx, uint32_t slots, Value fill) {
  Page* p = GetPage(idx);
  if (p != nullptr) return p;

  SpinGuard g(grow_latch_);
  Dir* d = dir_.load(std::memory_order_acquire);
  if (d == nullptr || idx >= d->capacity) {
    uint32_t new_cap = d == nullptr ? 8 : d->capacity;
    while (new_cap <= idx) new_cap *= 2;
    auto nd = std::make_unique<Dir>(new_cap);
    if (d != nullptr) {
      for (uint32_t i = 0; i < d->capacity; ++i) {
        nd->pages[i].store(d->pages[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      }
      // Old directory stays readable for concurrent readers; retire it
      // to the graveyard (freed with the segment).
      for (auto it = live_keeper_.begin(); it != live_keeper_.end(); ++it) {
        if (it->get() == d) {
          graveyard_.push_back(std::move(*it));
          live_keeper_.erase(it);
          break;
        }
      }
    }
    d = nd.get();
    live_keeper_.push_back(std::move(nd));
    dir_.store(d, std::memory_order_release);
  }
  p = d->pages[idx].load(std::memory_order_acquire);
  if (p == nullptr) {
    p = new Page(slots, fill);
    d->pages[idx].store(p, std::memory_order_release);
  }
  return p;
}

size_t LazyPageList::allocated_pages() const {
  Dir* d = dir_.load(std::memory_order_acquire);
  if (d == nullptr) return 0;
  size_t n = 0;
  for (uint32_t i = 0; i < d->capacity; ++i) {
    if (d->pages[i].load(std::memory_order_relaxed) != nullptr) ++n;
  }
  return n;
}

void LazyPageList::DropPagesBelow(uint32_t first_kept) {
  SpinGuard g(grow_latch_);
  Dir* d = dir_.load(std::memory_order_acquire);
  if (d == nullptr) return;
  uint32_t bound = first_kept < d->capacity ? first_kept : d->capacity;
  for (uint32_t i = 0; i < bound; ++i) {
    Page* p = d->pages[i].load(std::memory_order_relaxed);
    if (p != nullptr) {
      d->pages[i].store(nullptr, std::memory_order_release);
      delete p;
    }
  }
}

TailSegment::TailSegment(uint32_t num_data_columns, uint32_t page_slots)
    : num_data_columns_(num_data_columns),
      page_slots_(page_slots),
      columns_(kTailMetaColumns + num_data_columns) {}

void TailSegment::Write(uint32_t seq, uint32_t col, Value v) {
  Page* p = columns_[col].EnsurePage(PageIndex(seq), page_slots_);
  p->Set(SlotIndex(seq), v);
}

Value TailSegment::Read(uint32_t seq, uint32_t col) const {
  Page* p = columns_[col].GetPage(PageIndex(seq));
  if (p == nullptr) return kNull;
  return p->Get(SlotIndex(seq));
}

std::atomic<Value>* TailSegment::StartTimeSlot(uint32_t seq) {
  Page* p =
      columns_[kTailStartTime].EnsurePage(PageIndex(seq), page_slots_);
  return &p->AtomicSlot(SlotIndex(seq));
}

size_t TailSegment::allocated_pages() const {
  size_t n = 0;
  for (const auto& c : columns_) n += c.allocated_pages();
  return n;
}

void TailSegment::DropRecordsBelow(uint32_t first_kept_seq) {
  if (first_kept_seq <= 1) return;
  uint32_t first_kept_page = (first_kept_seq - 1) / page_slots_;
  for (auto& c : columns_) c.DropPagesBelow(first_kept_page);
}

}  // namespace lstore
