#include "storage/compression/varint.h"

namespace lstore {

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(const char* data, size_t size, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  while (p < size && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data[p++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool GetVarint64(const std::string& data, size_t* pos, uint64_t* v) {
  return GetVarint64(data.data(), data.size(), pos, v);
}

size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    ++len;
    v >>= 7;
  }
  return len;
}

}  // namespace lstore
