// Delta compression for ordered or slowly-changing 64-bit sequences.
//
// Section 4.3: "Delta-compression is applied across different versions
// of tail records" once versions of a record are inlined contiguously.
// Also used for the highly compressible Start Time column (footnote
// 10) and base-RID-ordered offsets.

#ifndef LSTORE_STORAGE_COMPRESSION_DELTA_H_
#define LSTORE_STORAGE_COMPRESSION_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lstore {

/// Encode values as first value + zigzag(varint) deltas.
void DeltaEncode(const std::vector<Value>& values, std::string* out);

/// Decode the full sequence. Returns false on corruption.
bool DeltaDecode(const std::string& data, std::vector<Value>* out);
bool DeltaDecode(const char* data, size_t size, size_t* pos, size_t count,
                 std::vector<Value>* out);

/// Encoded byte size without materializing (for stats / tests).
size_t DeltaEncodedSize(const std::vector<Value>& values);

}  // namespace lstore

#endif  // LSTORE_STORAGE_COMPRESSION_DELTA_H_
