#include "storage/compression/dictionary.h"

#include <algorithm>

#include "common/bitutil.h"

namespace lstore {

DictionaryColumn::DictionaryColumn(const std::vector<Value>& values) {
  dict_ = values;
  std::sort(dict_.begin(), dict_.end());
  dict_.erase(std::unique(dict_.begin(), dict_.end()), dict_.end());

  std::vector<uint64_t> codes;
  codes.reserve(values.size());
  for (Value v : values) {
    codes.push_back(static_cast<uint64_t>(
        std::lower_bound(dict_.begin(), dict_.end(), v) - dict_.begin()));
  }
  int width = BitsNeeded(dict_.empty() ? 0 : dict_.size() - 1);
  codes_ = BitPackedArray(codes, width);
}

}  // namespace lstore
