// Run-length encoding for low-cardinality, clustered columns (e.g. the
// Last Updated Time column after a merge, where large record ranges
// share the same consolidation timestamp).

#ifndef LSTORE_STORAGE_COMPRESSION_RLE_H_
#define LSTORE_STORAGE_COMPRESSION_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lstore {

class RleColumn {
 public:
  RleColumn() = default;
  explicit RleColumn(const std::vector<Value>& values);

  /// O(log #runs) random access via binary search on run starts.
  Value Get(size_t i) const;

  /// Run accessors for sequential (cursor) scans: a monotone reader
  /// advances run by run in O(1) instead of re-searching per slot.
  uint64_t run_start(size_t k) const { return starts_[k]; }
  Value run_value(size_t k) const { return values_[k]; }

  size_t size() const { return size_; }
  size_t run_count() const { return starts_.size(); }
  size_t byte_size() const {
    return (starts_.size() + values_.size()) * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> starts_;  // first index of each run
  std::vector<Value> values_;     // value of each run
  size_t size_ = 0;
};

}  // namespace lstore

#endif  // LSTORE_STORAGE_COMPRESSION_RLE_H_
