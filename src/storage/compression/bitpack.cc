#include "storage/compression/bitpack.h"

namespace lstore {

BitPackedArray::BitPackedArray(const std::vector<uint64_t>& values, int width)
    : size_(values.size()), width_(width) {
  if (width_ == 0 || size_ == 0) return;
  size_t total_bits = size_ * static_cast<size_t>(width_);
  words_.assign((total_bits + 63) / 64, 0);
  size_t bit = 0;
  for (uint64_t v : values) {
    size_t word = bit / 64;
    int off = static_cast<int>(bit % 64);
    words_[word] |= v << off;
    if (off + width_ > 64) {
      words_[word + 1] |= v >> (64 - off);
    }
    bit += static_cast<size_t>(width_);
  }
}

uint64_t BitPackedArray::Get(size_t i) const {
  if (width_ == 0) return 0;
  size_t bit = i * static_cast<size_t>(width_);
  size_t word = bit / 64;
  int off = static_cast<int>(bit % 64);
  uint64_t v = words_[word] >> off;
  if (off + width_ > 64) {
    v |= words_[word + 1] << (64 - off);
  }
  if (width_ < 64) {
    v &= (1ull << width_) - 1;
  }
  return v;
}

}  // namespace lstore
