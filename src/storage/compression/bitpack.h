// Fixed-width bit packing: stores each value in exactly `width` bits.
// Random access in O(1), which is what dictionary-encoded base pages
// need to serve point reads without decompressing the page.

#ifndef LSTORE_STORAGE_COMPRESSION_BITPACK_H_
#define LSTORE_STORAGE_COMPRESSION_BITPACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lstore {

class BitPackedArray {
 public:
  BitPackedArray() = default;

  /// Pack `values`, each of which must fit in `width` bits (width in
  /// [0, 64]; width 0 means all values are zero).
  BitPackedArray(const std::vector<uint64_t>& values, int width);

  uint64_t Get(size_t i) const;
  size_t size() const { return size_; }
  int width() const { return width_; }
  size_t byte_size() const { return words_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  int width_ = 0;
};

}  // namespace lstore

#endif  // LSTORE_STORAGE_COMPRESSION_BITPACK_H_
