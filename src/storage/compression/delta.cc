#include "storage/compression/delta.h"

#include "common/bitutil.h"
#include "storage/compression/varint.h"

namespace lstore {

void DeltaEncode(const std::vector<Value>& values, std::string* out) {
  PutVarint64(out, values.size());
  Value prev = 0;
  for (Value v : values) {
    PutVarint64(out, ZigzagEncode(static_cast<int64_t>(v - prev)));
    prev = v;
  }
}

bool DeltaDecode(const char* data, size_t size, size_t* pos, size_t count,
                 std::vector<Value>* out) {
  out->clear();
  out->reserve(count);
  Value prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t zz;
    if (!GetVarint64(data, size, pos, &zz)) return false;
    prev = prev + static_cast<uint64_t>(ZigzagDecode(zz));
    out->push_back(prev);
  }
  return true;
}

bool DeltaDecode(const std::string& data, std::vector<Value>* out) {
  size_t pos = 0;
  uint64_t count;
  if (!GetVarint64(data, &pos, &count)) return false;
  return DeltaDecode(data.data(), data.size(), &pos,
                     static_cast<size_t>(count), out);
}

size_t DeltaEncodedSize(const std::vector<Value>& values) {
  size_t n = VarintLength(values.size());
  Value prev = 0;
  for (Value v : values) {
    n += VarintLength(ZigzagEncode(static_cast<int64_t>(v - prev)));
    prev = v;
  }
  return n;
}

}  // namespace lstore
