// Dictionary encoding for read-optimized base pages.
//
// Section 4.1.1, Step 3: "Any compression algorithm (e.g., dictionary
// encoding) can be applied on the consolidated pages (on column
// basis)". Distinct values are collected into a sorted dictionary and
// each slot stores a bit-packed code; point reads stay O(1).

#ifndef LSTORE_STORAGE_COMPRESSION_DICTIONARY_H_
#define LSTORE_STORAGE_COMPRESSION_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/compression/bitpack.h"

namespace lstore {

class DictionaryColumn {
 public:
  DictionaryColumn() = default;

  /// Build from raw values. Worth using only when the number of
  /// distinct values is small relative to the page (callers decide via
  /// byte_size()).
  explicit DictionaryColumn(const std::vector<Value>& values);

  Value Get(size_t i) const { return dict_[codes_.Get(i)]; }
  size_t size() const { return codes_.size(); }
  size_t dictionary_size() const { return dict_.size(); }
  size_t byte_size() const {
    return dict_.size() * sizeof(Value) + codes_.byte_size();
  }

 private:
  std::vector<Value> dict_;
  BitPackedArray codes_;
};

}  // namespace lstore

#endif  // LSTORE_STORAGE_COMPRESSION_DICTIONARY_H_
