#include "storage/compression/rle.h"

#include <algorithm>

namespace lstore {

RleColumn::RleColumn(const std::vector<Value>& values) : size_(values.size()) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || values[i] != values_.back()) {
      starts_.push_back(i);
      values_.push_back(values[i]);
    }
  }
}

Value RleColumn::Get(size_t i) const {
  size_t run = static_cast<size_t>(
      std::upper_bound(starts_.begin(), starts_.end(), i) - starts_.begin());
  return values_[run - 1];
}

}  // namespace lstore
