// LEB128-style variable-length integer codec: the byte-level substrate
// of the delta compression applied to historic tail pages (Section
// 4.3) and of the redo log encoding (Section 5.1.3).

#ifndef LSTORE_STORAGE_COMPRESSION_VARINT_H_
#define LSTORE_STORAGE_COMPRESSION_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lstore {

/// Append v to out, 7 bits per byte, little-endian groups.
void PutVarint64(std::string* out, uint64_t v);

/// Decode a varint starting at data[*pos]; advances *pos. Returns
/// false on truncated input.
bool GetVarint64(const std::string& data, size_t* pos, uint64_t* v);
bool GetVarint64(const char* data, size_t size, size_t* pos, uint64_t* v);

/// Encoded size in bytes.
size_t VarintLength(uint64_t v);

}  // namespace lstore

#endif  // LSTORE_STORAGE_COMPRESSION_VARINT_H_
