// RAII transaction session handle.
//
// A `Txn` binds the per-transaction state of the optimistic protocol
// (Section 5.1.1) to the engine that began it: `Commit()` runs the
// owning engine's commit pipeline, and a handle destroyed while still
// active aborts automatically, so no code path can leak an in-flight
// transaction. Point and batch operations take `Txn&`; the raw
// `Transaction` is engine-internal.

#ifndef LSTORE_TXN_TXN_H_
#define LSTORE_TXN_TXN_H_

#include <utility>

#include "common/status.h"
#include "txn/transaction.h"

namespace lstore {

/// Implemented by every engine that can begin/commit transactions
/// (Table, Database, and the layout/baseline variants); the virtual
/// hop only runs at commit/abort, never on the operation hot path.
class TxnContext {
 public:
  virtual Status CommitTxn(Transaction* txn) = 0;
  virtual void AbortTxn(Transaction* txn) = 0;

 protected:
  ~TxnContext() = default;
};

class Txn {
 public:
  Txn(TxnContext* host, Transaction txn)
      : host_(host), txn_(std::move(txn)) {}

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  Txn(Txn&& other) noexcept : host_(other.host_), txn_(std::move(other.txn_)) {
    other.host_ = nullptr;
  }
  Txn& operator=(Txn&& other) noexcept {
    if (this != &other) {
      if (active()) Abort();
      host_ = other.host_;
      txn_ = std::move(other.txn_);
      other.host_ = nullptr;
    }
    return *this;
  }

  /// Auto-abort: a session that goes out of scope without committing
  /// leaves only tombstoned tail records behind.
  ~Txn() {
    if (active()) host_->AbortTxn(&txn_);
  }

  /// Validate, log, and atomically publish. After return (ok or not)
  /// the session is finished.
  Status Commit() {
    if (!active()) return Status::InvalidArgument("transaction finished");
    return host_->CommitTxn(&txn_);
  }

  /// Roll back: stamp this session's writes as aborted tombstones.
  void Abort() {
    if (active()) host_->AbortTxn(&txn_);
  }

  bool active() const { return host_ != nullptr && !txn_.finished(); }

  TxnId id() const { return txn_.id(); }
  Timestamp begin_time() const { return txn_.begin_time(); }
  Timestamp commit_time() const { return txn_.commit_time(); }
  IsolationLevel isolation() const { return txn_.isolation(); }

  /// The engine that began this session (engines verify ops are
  /// issued against the right scope).
  const TxnContext* host() const { return host_; }

  /// The protocol-level state (engine-internal; exposed for tests and
  /// the storage layers that record read/write sets).
  Transaction* raw() { return &txn_; }
  const Transaction* raw() const { return &txn_; }

 private:
  TxnContext* host_;
  Transaction txn_;
};

}  // namespace lstore

#endif  // LSTORE_TXN_TXN_H_
