// Transaction manager: issues begin/commit timestamps from the
// synchronized logical clock and tracks per-transaction state in a
// hashtable (Section 5.1.1: "The transaction manager also maintains
// the state of each transaction and its begin/commit time in a
// hashtable").
//
// Entries are retired once the transaction's Start Time slots have
// been stamped with the final outcome (commit time or aborted stamp),
// so the table stays bounded; a reader that misses an entry simply
// re-reads the slot, which by then holds the stamped value.

#ifndef LSTORE_TXN_TRANSACTION_MANAGER_H_
#define LSTORE_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/latch.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace lstore {

class TransactionManager {
 public:
  struct TxnInfo {
    std::atomic<TxnState> state{TxnState::kActive};
    Timestamp begin = 0;
    std::atomic<Timestamp> commit{0};
  };

  TransactionManager() : shards_(64) {}

  /// Begin: advance the clock, mint a transaction id (the MSB-tagged
  /// begin time — footnote 14: "the begin time could itself be used as
  /// a seed for the transaction ID").
  Transaction Begin(IsolationLevel iso = IsolationLevel::kReadCommitted);

  /// Transition active → pre-commit and assign the commit time
  /// atomically with respect to state queries.
  Timestamp EnterPreCommit(Transaction* txn);

  void MarkCommitted(Transaction* txn);
  void MarkAborted(Transaction* txn);

  /// Remove the hashtable entry once all Start Time slots are stamped.
  void Retire(TxnId id);

  /// Snapshot of a transaction's state; `found == false` means the
  /// entry was already retired (outcome is stamped in the slots).
  struct StateView {
    bool found = false;
    TxnState state = TxnState::kCommitted;
    Timestamp commit = 0;
  };
  StateView GetState(TxnId id) const;

  LogicalClock& clock() { return clock_; }
  const LogicalClock& clock() const { return clock_; }

  /// A read snapshot admitting every currently-committed transaction
  /// WITHOUT advancing the clock: visibility compares are strict '<',
  /// so now+1 covers commit times <= now. The single home of the
  /// engine-wide convention behind every engine's Now().
  Timestamp SnapshotNow() const { return clock_.Now() + 1; }

  /// Number of live entries (tests/stats).
  size_t live_entries() const;

 private:
  struct Shard {
    mutable SpinLatch latch;
    std::unordered_map<TxnId, std::unique_ptr<TxnInfo>> map;
  };
  size_t ShardOf(TxnId id) const {
    return (id * 0x9e3779b97f4a7c15ull >> 32) % shards_.size();
  }

  LogicalClock clock_;
  mutable std::vector<Shard> shards_;
};

}  // namespace lstore

#endif  // LSTORE_TXN_TRANSACTION_MANAGER_H_
