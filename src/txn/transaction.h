// Per-transaction state for the optimistic concurrency protocol of
// Section 5.1.1 (after [33], with speculative reads after [18]).

#ifndef LSTORE_TXN_TRANSACTION_H_
#define LSTORE_TXN_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace lstore {

enum class IsolationLevel {
  kReadCommitted,  ///< reads latest committed; no validation
  kSnapshot,       ///< reads as of begin time; validates speculative reads
  kSerializable,   ///< validates every read at commit
};

enum class TxnState : uint8_t {
  kActive = 0,
  kPreCommit,  ///< validating reads (speculatively readable by others)
  kCommitted,
  kAborted,
};

/// One entry of the readset: which version (identified by the tail seq
/// at read time, 0 = base) of which base record was observed.
struct ReadEntry {
  uint64_t range_id;
  uint32_t base_slot;
  uint32_t observed_seq;    ///< visible version when read (0 = base record)
  bool speculative;         ///< read a pre-committed version ([18])
  TxnId dependency;         ///< writer we speculated on (0 = none)
  const void* owner = nullptr;  ///< table that recorded the entry
};

/// One entry of the writeset: a tail record this transaction appended.
struct WriteEntry {
  uint64_t range_id;
  uint32_t base_slot;
  uint32_t seq;             ///< tail sequence of the appended version
  bool is_insert;           ///< insert into an insert range
  Value inserted_key;       ///< for index rollback on abort
  const void* owner = nullptr;  ///< table that recorded the entry
};

class Transaction {
 public:
  Transaction(TxnId id, Timestamp begin, IsolationLevel iso)
      : id_(id), begin_time_(begin), isolation_(iso) {}

  TxnId id() const { return id_; }
  Timestamp begin_time() const { return begin_time_; }
  Timestamp commit_time() const { return commit_time_; }
  void set_commit_time(Timestamp t) { commit_time_ = t; }
  IsolationLevel isolation() const { return isolation_; }

  std::vector<ReadEntry>& readset() { return readset_; }
  std::vector<WriteEntry>& writeset() { return writeset_; }
  const std::vector<ReadEntry>& readset() const { return readset_; }
  const std::vector<WriteEntry>& writeset() const { return writeset_; }

  /// Writers this transaction speculatively read from; they must have
  /// committed before this transaction may commit.
  std::vector<TxnId>& commit_dependencies() { return commit_deps_; }

  bool finished() const { return finished_; }
  void set_finished() { finished_ = true; }

 private:
  TxnId id_;
  Timestamp begin_time_;
  Timestamp commit_time_ = 0;
  IsolationLevel isolation_;
  std::vector<ReadEntry> readset_;
  std::vector<WriteEntry> writeset_;
  std::vector<TxnId> commit_deps_;
  bool finished_ = false;
};

}  // namespace lstore

#endif  // LSTORE_TXN_TRANSACTION_H_
