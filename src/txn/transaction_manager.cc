#include "txn/transaction_manager.h"

namespace lstore {

Transaction TransactionManager::Begin(IsolationLevel iso) {
  Timestamp begin = clock_.Tick();
  TxnId id = kTxnIdTag | begin;
  Shard& s = shards_[ShardOf(id)];
  {
    SpinGuard g(s.latch);
    auto info = std::make_unique<TxnInfo>();
    info->begin = begin;
    s.map.emplace(id, std::move(info));
  }
  return Transaction(id, begin, iso);
}

Timestamp TransactionManager::EnterPreCommit(Transaction* txn) {
  Shard& s = shards_[ShardOf(txn->id())];
  // Order matters for snapshot consistency: flip to pre-commit FIRST,
  // then acquire the commit timestamp. A reader that still observes
  // kActive is thereby guaranteed that this transaction's commit time
  // will exceed any snapshot the reader already holds; a reader that
  // observes kPreCommit waits for the (possibly still zero) commit
  // time and decides against it.
  {
    SpinGuard g(s.latch);
    auto it = s.map.find(txn->id());
    if (it != s.map.end()) {
      it->second->state.store(TxnState::kPreCommit,
                              std::memory_order_release);
    }
  }
  Timestamp commit = clock_.Tick();
  txn->set_commit_time(commit);
  {
    SpinGuard g(s.latch);
    auto it = s.map.find(txn->id());
    if (it != s.map.end()) {
      it->second->commit.store(commit, std::memory_order_release);
    }
  }
  return commit;
}

void TransactionManager::MarkCommitted(Transaction* txn) {
  Shard& s = shards_[ShardOf(txn->id())];
  SpinGuard g(s.latch);
  auto it = s.map.find(txn->id());
  if (it != s.map.end()) {
    it->second->state.store(TxnState::kCommitted, std::memory_order_release);
  }
}

void TransactionManager::MarkAborted(Transaction* txn) {
  Shard& s = shards_[ShardOf(txn->id())];
  SpinGuard g(s.latch);
  auto it = s.map.find(txn->id());
  if (it != s.map.end()) {
    it->second->state.store(TxnState::kAborted, std::memory_order_release);
  }
}

void TransactionManager::Retire(TxnId id) {
  Shard& s = shards_[ShardOf(id)];
  SpinGuard g(s.latch);
  s.map.erase(id);
}

TransactionManager::StateView TransactionManager::GetState(TxnId id) const {
  const Shard& s = shards_[ShardOf(id)];
  SpinGuard g(s.latch);
  auto it = s.map.find(id);
  StateView view;
  if (it == s.map.end()) return view;  // retired
  view.found = true;
  view.state = it->second->state.load(std::memory_order_acquire);
  view.commit = it->second->commit.load(std::memory_order_acquire);
  return view;
}

size_t TransactionManager::live_entries() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    SpinGuard g(s.latch);
    n += s.map.size();
  }
  return n;
}

}  // namespace lstore
