#include "checkpoint/checkpoint_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "archive/archive_manager.h"
#include "checkpoint/serde.h"
#include "core/commit_pipeline.h"
#include "core/database.h"
#include "core/table.h"
#include "log/commit_log.h"
#include "log/redo_log.h"
#include "obs/trace.h"
#include "storage/compression/varint.h"

namespace lstore {

namespace {

constexpr char kManifestFile[] = "MANIFEST";
constexpr char kCatalogFile[] = "CATALOG";

bool FileExists(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t FileBytes(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

/// Pack the restart-relevant TableConfig fields (logging fields are
/// re-derived from the directory at Open time).
void PutConfig(std::string* p, const TableConfig& c) {
  PutVarint64(p, c.range_size);
  PutVarint64(p, c.base_page_slots);
  PutVarint64(p, c.tail_page_slots);
  PutVarint64(p, c.merge_threshold);
  PutVarint64(p, c.merge_fanin);
  PutVarint64(p, c.insert_range_size);
  uint64_t flags = (c.cumulative_updates ? 1u : 0) |
                   (c.compress_merged_pages ? 2u : 0) |
                   (c.enable_merge_thread ? 4u : 0);
  PutVarint64(p, flags);
}

bool GetConfig(std::string_view p, size_t* pos, TableConfig* c) {
  uint64_t v, flags;
  if (!GetU64(p, pos, &v)) return false;
  c->range_size = static_cast<uint32_t>(v);
  if (!GetU64(p, pos, &v)) return false;
  c->base_page_slots = static_cast<uint32_t>(v);
  if (!GetU64(p, pos, &v)) return false;
  c->tail_page_slots = static_cast<uint32_t>(v);
  if (!GetU64(p, pos, &v)) return false;
  c->merge_threshold = static_cast<uint32_t>(v);
  if (!GetU64(p, pos, &v)) return false;
  c->merge_fanin = static_cast<uint32_t>(v);
  if (!GetU64(p, pos, &v)) return false;
  c->insert_range_size = static_cast<uint32_t>(v);
  if (!GetU64(p, pos, &flags)) return false;
  c->cumulative_updates = (flags & 1u) != 0;
  c->compress_merged_pages = (flags & 2u) != 0;
  c->enable_merge_thread = (flags & 4u) != 0;
  return true;
}

/// fsync the directory so renames/unlinks inside it survive power
/// loss (the file data alone is not enough for crash atomicity).
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open dir for fsync: " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("dir fsync failed: " + dir);
  return Status::OK();
}

std::string DirOf(const std::string& path) {
  size_t sep = path.find_last_of('/');
  return sep == std::string::npos ? "." : path.substr(0, sep);
}

/// Write a frame file to path.tmp, then atomically rename onto path.
template <typename WriteFrames>
Status WriteAtomically(const std::string& path, uint32_t magic,
                       WriteFrames&& write_frames) {
  std::string tmp = path + ".tmp";
  {
    FrameWriter w;
    Status s = w.Open(tmp, magic);
    if (s.ok()) s = write_frames(&w);
    if (s.ok()) s = w.Finish();
    if (!s.ok()) {
      std::remove(tmp.c_str());  // no stale partial files (e.g. ENOSPC)
      return s;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot publish " + path);
  }
  return SyncDir(DirOf(path));
}

}  // namespace

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::string ManifestPath(const std::string& dir) {
  return dir + "/" + kManifestFile;
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  return WriteAtomically(
      ManifestPath(dir), kManifestMagic, [&](FrameWriter* w) {
        std::string p;
        PutVarint64(&p, m.checkpoint_id);
        PutVarint64(&p, m.entries.size());
        PutVarint64(&p, m.capture_time);
        PutVarint64(&p, m.commit_log_mark);
        LSTORE_RETURN_IF_ERROR(w->WriteFrame(FrameType::kManifestHeader, p));
        for (const ManifestEntry& e : m.entries) {
          std::string q;
          PutString(&q, e.table);
          PutString(&q, e.file);
          PutVarint64(&q, e.file_checksum);
          PutVarint64(&q, e.log_watermark);
          PutVarint64(&q, e.secondary_columns.size());
          for (ColumnId c : e.secondary_columns) PutVarint64(&q, c);
          LSTORE_RETURN_IF_ERROR(w->WriteFrame(FrameType::kManifestEntry, q));
        }
        return Status::OK();
      });
}

Status ReadManifest(const std::string& dir, Manifest* m, bool* exists) {
  return ReadManifestFile(ManifestPath(dir), m, exists);
}

Status ReadManifestFile(const std::string& path, Manifest* m, bool* exists) {
  *exists = FileExists(path);
  if (!*exists) return Status::OK();
  FrameReader r;
  LSTORE_RETURN_IF_ERROR(r.Open(path, kManifestMagic));
  uint64_t expected_entries = 0;
  bool header_seen = false;
  FrameType type;
  std::string_view p;
  while (r.Next(&type, &p)) {
    size_t pos = 0;
    if (type == FrameType::kManifestHeader) {
      if (!GetU64(p, &pos, &m->checkpoint_id) ||
          !GetU64(p, &pos, &expected_entries)) {
        return Status::Corruption("bad manifest header");
      }
      // Archive watermarks (absent in pre-archive manifests = 0).
      if (pos < p.size() &&
          (!GetU64(p, &pos, &m->capture_time) ||
           !GetU64(p, &pos, &m->commit_log_mark))) {
        return Status::Corruption("bad manifest header");
      }
      header_seen = true;
    } else if (type == FrameType::kManifestEntry) {
      ManifestEntry e;
      uint64_t nsec;
      if (!GetString(p, &pos, &e.table) || !GetString(p, &pos, &e.file) ||
          !GetU64(p, &pos, &e.file_checksum) ||
          !GetU64(p, &pos, &e.log_watermark) || !GetU64(p, &pos, &nsec)) {
        return Status::Corruption("bad manifest entry");
      }
      for (uint64_t i = 0; i < nsec; ++i) {
        uint64_t c;
        if (!GetU64(p, &pos, &c)) return Status::Corruption("bad manifest");
        e.secondary_columns.push_back(static_cast<ColumnId>(c));
      }
      m->entries.push_back(std::move(e));
    }
  }
  LSTORE_RETURN_IF_ERROR(r.status());
  if (!header_seen || m->entries.size() != expected_entries) {
    return Status::Corruption("manifest truncated");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

Status WriteCatalog(const std::string& dir,
                    const std::vector<CatalogEntry>& entries) {
  return WriteAtomically(
      dir + "/" + kCatalogFile, kCatalogMagic, [&](FrameWriter* w) {
        std::string p;
        PutVarint64(&p, entries.size());
        LSTORE_RETURN_IF_ERROR(w->WriteFrame(FrameType::kCatalogHeader, p));
        for (const CatalogEntry& e : entries) {
          std::string q;
          PutString(&q, e.name);
          PutVarint64(&q, e.columns.size());
          for (const std::string& col : e.columns) PutString(&q, col);
          PutConfig(&q, e.config);
          PutVarint64(&q, e.secondary_columns.size());
          for (ColumnId c : e.secondary_columns) PutVarint64(&q, c);
          LSTORE_RETURN_IF_ERROR(w->WriteFrame(FrameType::kCatalogEntry, q));
        }
        return Status::OK();
      });
}

Status ReadCatalog(const std::string& dir, std::vector<CatalogEntry>* entries,
                   bool* exists) {
  std::string path = dir + "/" + kCatalogFile;
  *exists = FileExists(path);
  if (!*exists) return Status::OK();
  FrameReader r;
  LSTORE_RETURN_IF_ERROR(r.Open(path, kCatalogMagic));
  uint64_t expected = 0;
  bool header_seen = false;
  FrameType type;
  std::string_view p;
  while (r.Next(&type, &p)) {
    size_t pos = 0;
    if (type == FrameType::kCatalogHeader) {
      if (!GetU64(p, &pos, &expected)) {
        return Status::Corruption("bad catalog header");
      }
      header_seen = true;
    } else if (type == FrameType::kCatalogEntry) {
      CatalogEntry e;
      uint64_t ncols;
      if (!GetString(p, &pos, &e.name) || !GetU64(p, &pos, &ncols)) {
        return Status::Corruption("bad catalog entry");
      }
      for (uint64_t c = 0; c < ncols; ++c) {
        std::string col;
        if (!GetString(p, &pos, &col)) {
          return Status::Corruption("bad catalog entry");
        }
        e.columns.push_back(std::move(col));
      }
      if (!GetConfig(p, &pos, &e.config)) {
        return Status::Corruption("bad catalog config");
      }
      uint64_t nsec;
      if (!GetU64(p, &pos, &nsec)) return Status::Corruption("bad catalog");
      for (uint64_t i = 0; i < nsec; ++i) {
        uint64_t c;
        if (!GetU64(p, &pos, &c)) return Status::Corruption("bad catalog");
        e.secondary_columns.push_back(static_cast<ColumnId>(c));
      }
      entries->push_back(std::move(e));
    }
  }
  LSTORE_RETURN_IF_ERROR(r.status());
  if (!header_seen || entries->size() != expected) {
    return Status::Corruption("catalog truncated");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CheckpointManager
// ---------------------------------------------------------------------------

CheckpointManager::CheckpointManager(Database* db, std::string dir,
                                     DurabilityOptions opts)
    : db_(db), dir_(std::move(dir)), opts_(opts) {
  hb_ = db_->health_.Register("checkpointer");
}

CheckpointManager::~CheckpointManager() { Stop(); }

void CheckpointManager::SetRecoveredManifest(const Manifest& m) {
  std::lock_guard<std::mutex> g(mu_);
  next_checkpoint_id_ = m.checkpoint_id + 1;
  previous_files_.clear();
  for (const ManifestEntry& e : m.entries) previous_files_.push_back(e.file);
}

uint64_t CheckpointManager::checkpoints_taken() const {
  std::lock_guard<std::mutex> g(mu_);
  return checkpoints_taken_;
}

Status CheckpointManager::last_background_status() const {
  std::lock_guard<std::mutex> g(mu_);
  return last_background_status_;
}

Status CheckpointManager::RunCheckpoint() {
  // DDL first, then checkpoint_mu_ (same order as ForgetTable callers):
  // tables must not be dropped while we hold raw pointers to them.
  std::lock_guard<std::mutex> ddl(db_->ddl_mu_);
  std::lock_guard<std::mutex> serialize(checkpoint_mu_);
  HeartbeatWorkScope work(hb_.get());
  uint64_t id;
  {
    std::lock_guard<std::mutex> g(mu_);
    id = next_checkpoint_id_;
  }
  db_->events_.Emit(EventSeverity::kInfo, "checkpointer", "checkpoint_begin",
                    "\"id\":" + std::to_string(id));

  auto tables = db_->TableHandles();
  Manifest m;
  m.checkpoint_id = id;
  std::vector<std::string> new_files;
  Status status = Status::OK();

  // Phase 1 — quiesce through the commit log: every table's watermark
  // and the commit-log position are snapshotted inside the
  // group-commit window, so no commit can be half-way through its
  // durability sequence (some participant logs flushed, commit-log
  // record not yet) while the watermarks are taken. The lock covers
  // only the LSN reads — the fsyncs below run with commits flowing.
  // Watermarks BEFORE capture: anything the capture might miss has a
  // higher LSN and will be replayed at recovery (idempotently).
  uint64_t commit_quiesce_lsn = 0;
  {
    std::unique_lock<std::mutex> quiesce;
    if (db_->group_commit_ != nullptr) {
      quiesce = std::unique_lock<std::mutex>(db_->group_commit_->window_mu());
    }
    for (auto& [name, t] : tables) {
      ManifestEntry e;
      e.table = name;
      if (t->log_ != nullptr) e.log_watermark = t->log_->last_lsn();
      e.file = "ckpt_" + std::to_string(id) + "_" + name + ".ckpt";
      m.entries.push_back(std::move(e));
    }
    if (db_->commit_log_ != nullptr) {
      commit_quiesce_lsn = db_->commit_log_->last_lsn();
    }
  }
  // Make the snapshotted prefixes durable (Flush syncs everything up
  // to and beyond the watermark; extra records are harmless).
  for (auto& [name, t] : tables) {
    (void)name;
    if (t->log_ != nullptr) {
      status = t->log_->Flush(/*sync=*/true);
      if (!status.ok()) break;
    }
  }
  if (status.ok() && db_->commit_log_ != nullptr) {
    status = db_->commit_log_->Flush(/*sync=*/true);
  }
  if (!status.ok()) {
    db_->events_.Emit(EventSeverity::kError, "checkpointer", "checkpoint_end",
                      "\"id\":" + std::to_string(id) + ",\"ok\":false");
    return status;
  }

  // Phase 2 — capture (commits proceed; the capture resolves
  // in-flight outcomes through the live transaction manager). Buffer-
  // managed segments are captured by reference into the table's
  // segment store; the store fsync below makes every referenced byte
  // range durable BEFORE the manifest that names it is published.
  uint64_t capture_t0 = kTraceEnabled ? NowNanos() : 0;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (hb_ != nullptr) hb_->Beat();  // progress between table captures
    Table* t = tables[i].second;
    ManifestEntry& e = m.entries[i];
    status = CheckpointIO::WriteTable(*t, dir_ + "/" + e.file,
                                      &e.file_checksum);
    if (status.ok()) status = t->SyncSegmentStore();
    if (!status.ok()) {
      std::remove((dir_ + "/" + e.file).c_str());  // drop the partial file
      break;
    }
    e.secondary_columns = t->SecondaryColumns();
    new_files.push_back(e.file);
  }
  if (kTraceEnabled) {
    db_->metrics_
        .GetHistogram("lstore_checkpoint_capture_ns",
                      "Checkpoint capture phase: table files + store "
                      "fsyncs (ns)")
        ->Record(NowNanos() - capture_t0);
  }

  // Archive watermarks, recorded in the manifest BEFORE it publishes:
  //  * capture_time — a SnapshotNow taken after the capture loop, a
  //    strict upper bound on every commit time the checkpoint files
  //    can contain (RestoreToPoint's qualification bound), and
  //  * commit_log_mark — the commit-log low-water mark: a record is
  //    covered once every participant's payloads sit at or below that
  //    table's checkpoint watermark (the capture resolved their
  //    outcomes, so the record is dead weight). Only records that
  //    existed when the watermarks were taken
  //    (lsn <= commit_quiesce_lsn) are candidates — a commit racing
  //    the capture keeps its record until the next checkpoint. Only
  //    the contiguous covered prefix counts, so truncated table-log
  //    prefixes can never orphan a still-needed record.
  if (status.ok()) {
    m.capture_time = db_->txn_manager_.SnapshotNow();
    if (db_->commit_log_ != nullptr) {
      std::unordered_map<std::string, uint64_t> watermarks;
      for (const ManifestEntry& e : m.entries) {
        watermarks[e.table] = e.log_watermark;
      }
      uint64_t low = 0;
      bool stop = false;
      status = db_->commit_log_->Scan(
          [&](const CommitLogRecord& rec, uint64_t lsn) {
            if (stop || lsn > commit_quiesce_lsn) {
              stop = true;
              return;
            }
            for (const CommitLogRecord::Participant& p : rec.participants) {
              auto it = watermarks.find(p.table);
              // A participant missing from the manifest was dropped;
              // nothing remains to recover for it.
              if (it != watermarks.end() && p.last_lsn > it->second) {
                stop = true;
                return;
              }
            }
            low = lsn;
          });
      if (status.ok()) m.commit_log_mark = low;
    }
  }

  if (status.ok()) status = WriteManifest(dir_, m);
  if (!status.ok()) {
    // Failed checkpoint: the old manifest still rules; drop orphans.
    for (const std::string& f : new_files) {
      std::remove((dir_ + "/" + f).c_str());
    }
    db_->events_.Emit(EventSeverity::kError, "checkpointer", "checkpoint_end",
                      "\"id\":" + std::to_string(id) + ",\"ok\":false");
    return status;
  }

  // With archiving on, the just-published manifest becomes a durable
  // restore-epoch boundary (MANIFEST.<id>). A crash before the copy
  // merely skips this epoch: restores in its window fall back to the
  // previous archived manifest plus a longer stitched replay.
  ArchiveManager* archive =
      db_->archive_ != nullptr && db_->archive_->enabled()
          ? db_->archive_.get()
          : nullptr;
  if (archive != nullptr) {
    Status as = archive->ArchiveManifestCopy(id);
    if (!as.ok() && status.ok()) status = as;
  }

  // The manifest is durable: the log prefix below each watermark is
  // dead weight now (Section 5.1.3's log truncation) — deleted, or,
  // with archiving on, sealed into LSN-range-named segments (durable
  // before each truncated log publishes, so no crash point loses log
  // bytes).
  uint64_t truncate_t0 = kTraceEnabled ? NowNanos() : 0;
  if (opts_.truncate_log_after_checkpoint) {
    for (size_t i = 0; i < tables.size(); ++i) {
      Table* t = tables[i].second;
      if (t->log_ != nullptr) {
        FramedLog::SealSink sink;
        if (archive != nullptr) {
          const std::string& table_name = tables[i].first;
          sink = [archive, &table_name](uint64_t lo, uint64_t hi,
                                        std::string_view bytes) {
            return archive->SealRedoPrefix(table_name, lo, hi, bytes);
          };
        }
        Status ts = t->log_->TruncateTo(m.entries[i].log_watermark, sink);
        if (!ts.ok() && status.ok()) status = ts;
      }
    }
    if (db_->commit_log_ != nullptr && m.commit_log_mark > 0) {
      FramedLog::SealSink sink;
      if (archive != nullptr) {
        sink = [archive](uint64_t lo, uint64_t hi, std::string_view bytes) {
          return archive->SealCommitPrefix(lo, hi, bytes);
        };
      }
      Status ss = db_->commit_log_->TruncateTo(m.commit_log_mark, sink);
      if (!ss.ok() && status.ok()) status = ss;
    }
  }
  if (kTraceEnabled) {
    db_->metrics_
        .GetHistogram(
            "lstore_checkpoint_truncate_ns",
            "Checkpoint truncation phase: log seal + rewrite (ns)")
        ->Record(NowNanos() - truncate_t0);
  }
  if (opts_.truncate_log_after_checkpoint) {
    db_->events_.Emit(EventSeverity::kInfo, "checkpointer", "log_truncate",
                      "\"id\":" + std::to_string(id) + ",\"commit_log_mark\":" +
                          std::to_string(m.commit_log_mark));
  }
  db_->metrics_
      .GetCounter("lstore_checkpoints_total", "Checkpoints published")
      ->Add(1);

  std::lock_guard<std::mutex> g(mu_);
  for (const std::string& f : previous_files_) {
    bool still_live = false;
    for (const std::string& nf : new_files) {
      if (nf == f) still_live = true;
    }
    if (still_live) continue;
    if (archive != nullptr) {
      // Superseded checkpoints move into the archive: the archived
      // manifests still reference them by name.
      Status as = archive->ArchiveCheckpointFile(f);
      if (!as.ok() && status.ok()) status = as;
    } else {
      std::remove((dir_ + "/" + f).c_str());
    }
  }
  previous_files_ = std::move(new_files);
  next_checkpoint_id_ = id + 1;
  ++checkpoints_taken_;
  if (archive != nullptr) {
    Status rs = archive->EnforceRetention();
    if (!rs.ok() && status.ok()) status = rs;
  }
  db_->events_.Emit(
      status.ok() ? EventSeverity::kInfo : EventSeverity::kWarn,
      "checkpointer", "checkpoint_end",
      "\"id\":" + std::to_string(id) +
          (status.ok() ? ",\"ok\":true" : ",\"ok\":false"));
  return status;
}

Status CheckpointManager::ForgetTable(const std::string& table) {
  std::lock_guard<std::mutex> serialize(checkpoint_mu_);
  Manifest m;
  bool exists = false;
  LSTORE_RETURN_IF_ERROR(ReadManifest(dir_, &m, &exists));
  if (!exists) return Status::OK();
  Manifest keep;
  keep.checkpoint_id = m.checkpoint_id;
  std::vector<std::string> dead;
  for (ManifestEntry& e : m.entries) {
    if (e.table == table) {
      dead.push_back(e.file);
    } else {
      keep.entries.push_back(std::move(e));
    }
  }
  if (dead.empty()) return Status::OK();
  LSTORE_RETURN_IF_ERROR(WriteManifest(dir_, keep));
  for (const std::string& f : dead) {
    std::remove((dir_ + "/" + f).c_str());
  }
  std::lock_guard<std::mutex> g(mu_);
  for (const std::string& f : dead) {
    previous_files_.erase(
        std::remove(previous_files_.begin(), previous_files_.end(), f),
        previous_files_.end());
  }
  return Status::OK();
}

uint64_t CheckpointManager::TotalLogBytes() const {
  std::lock_guard<std::mutex> ddl(db_->ddl_mu_);
  uint64_t total = 0;
  for (auto& [name, t] : db_->TableHandles()) {
    (void)name;
    if (!t->config().log_path.empty()) {
      total += FileBytes(t->config().log_path);
    }
  }
  return total;
}

void CheckpointManager::Start() {
  if (opts_.checkpoint_interval_ms == 0 && opts_.checkpoint_log_bytes == 0) {
    return;
  }
  std::lock_guard<std::mutex> g(mu_);
  if (running_) return;
  running_ = true;
  worker_ = std::thread([this] { Loop(); });
}

void CheckpointManager::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void CheckpointManager::Loop() {
  using Clock = std::chrono::steady_clock;
  auto last_checkpoint = Clock::now();
  std::unique_lock<std::mutex> lk(mu_);
  while (running_) {
    // Poll at a fraction of the interval so the size trigger stays
    // responsive even with a long timed interval.
    uint64_t poll_ms = opts_.checkpoint_interval_ms != 0
                           ? std::max<uint64_t>(opts_.checkpoint_interval_ms / 4, 1)
                           : 50;
    cv_.wait_for(lk, std::chrono::milliseconds(poll_ms),
                 [this] { return !running_; });
    if (!running_) break;
    lk.unlock();
    if (hb_ != nullptr) hb_->Beat();  // liveness per poll, even when idle

    bool due = false;
    if (opts_.checkpoint_interval_ms != 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Clock::now() - last_checkpoint)
                         .count();
      due = elapsed >= static_cast<int64_t>(opts_.checkpoint_interval_ms);
    }
    if (!due && opts_.checkpoint_log_bytes != 0) {
      due = TotalLogBytes() > opts_.checkpoint_log_bytes;
    }
    Status s = Status::OK();
    if (due) {
      s = RunCheckpoint();
      last_checkpoint = Clock::now();
    }

    lk.lock();
    if (due) last_background_status_ = s;
  }
}

}  // namespace lstore
