// Restart recovery (Section 5.1.3, recovery option 2).
//
// A table recovers in four steps:
//   1. load the latest checkpoint file (lineage-consistent snapshot of
//      base segments, tail pages, and the historic store),
//   2. replay the redo-log tail beyond the checkpoint's LSN watermark,
//      tolerating a torn or corrupt final record,
//   3. resolve every Start Time still holding a transaction id using
//      the logged commit/abort outcomes (crash before the outcome
//      record = aborted tombstone),
//   4. rebuild the primary index and the in-place Indirection column
//      from the Base RID backpointers of the tail records — neither is
//      logged nor checkpointed, exactly as the paper prescribes.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "checkpoint/serde.h"
#include "common/bitutil.h"
#include "core/historic.h"
#include "core/table.h"
#include "log/redo_log.h"

namespace lstore {

namespace {

void AtomicMaxU32(std::atomic<uint32_t>& a, uint32_t v) {
  uint32_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
}

}  // namespace

std::vector<ColumnId> Table::SecondaryColumns() const {
  SpinGuard g(secondary_latch_);
  std::vector<ColumnId> out;
  out.reserve(secondaries_.size());
  for (const auto& s : secondaries_) out.push_back(s.col);
  return out;
}

Status Table::ReplayAndRebuild(
    uint64_t watermark,
    const std::unordered_map<TxnId, Timestamp>* db_commits,
    const std::vector<std::string>* log_paths, Timestamp commit_horizon) {
  // Buffer-managed segments: recovery reads through pinned page
  // handles (an already-recovered table's merge thread can evict our
  // cold pages through the shared pool), so hold the epoch pin the
  // handle contract requires.
  EpochGuard guard(epochs_);
  // Seed the outcome map with the database commit log's verdicts:
  // cross-table transactions leave no commit record in this table's
  // log, and every participant recovers against the same map, so a
  // cross-table transaction replays on all of them or none.
  std::unordered_map<TxnId, Timestamp> commits;
  if (db_commits != nullptr) commits = *db_commits;
  Timestamp max_time = 0;

  // --- step 2: replay the redo-log tail -----------------------------------
  // The default source is the table's live log; a point-in-time
  // restore passes the stitched stream instead (sealed archive
  // segments in LSN order, then the live log — each one a
  // self-describing framed file, so the same Replay reads them all).
  std::vector<std::string> default_paths;
  if (log_paths == nullptr) {
    if (!config_.log_path.empty()) default_paths.push_back(config_.log_path);
    log_paths = &default_paths;
  }
  {
    std::vector<LogRecord> appends;
    Status rs = Status::OK();
    for (const std::string& log_path : *log_paths) {
      RedoLog::ReplayStats stats;
      rs = RedoLog::Replay(
        log_path,
        [&](const LogRecord& rec, uint64_t lsn) {
          switch (rec.type) {
            case LogRecordType::kCommit:
              // Commits beyond the restore horizon never happened in
              // the restored timeline: their tail records resolve to
              // aborted tombstones below.
              if (rec.commit_time <= commit_horizon) {
                commits[rec.txn_id] = rec.commit_time;
              }
              break;
            case LogRecordType::kAbort:
              // An abort record can FOLLOW a commit record of the same
              // transaction (a per-table commit record whose pipeline
              // failed later, or a commit-log record whose flush
              // failed), so the later abort is authoritative: the
              // in-memory commit point, the manager state flip, never
              // happened and the client saw the abort. Txn ids are
              // never reused, so erasing cannot drop a commit that
              // comes later in the log.
              commits.erase(rec.txn_id);
              break;
            case LogRecordType::kTailAppend:
            case LogRecordType::kInsertAppend:
              // Records at or below the watermark are covered by the
              // checkpoint; replaying beyond it is idempotent even for
              // records the checkpoint also captured.
              if (lsn > watermark) appends.push_back(rec);
              break;
            default:
              break;
          }
        },
        &stats);
      if (!rs.ok()) return rs;
    }

    // Overlapping archive segments (a crash between seal and truncate
    // re-seals a longer prefix) can deliver a record twice; the writes
    // below are idempotent, so duplicates are harmless.
    for (const LogRecord& rec : appends) {
      Range* r = EnsureRange(rec.range_id);
      TailSegment& seg = rec.type == LogRecordType::kInsertAppend
                             ? r->inserts
                             : r->updates;
      if (rec.type == LogRecordType::kTailAppend) {
        r->updates.AdvanceSeq(rec.seq);
      } else {
        r->inserts.AdvanceSeq(rec.seq);
        AtomicMaxU32(r->occupied, rec.base_slot + 1);
        uint64_t row_bound =
            rec.range_id * config_.range_size + rec.base_slot + 1;
        uint64_t cur = next_row_.load(std::memory_order_relaxed);
        while (cur < row_bound &&
               !next_row_.compare_exchange_weak(cur, row_bound,
                                                std::memory_order_relaxed)) {
        }
      }
      int vi = 0;
      for (BitIter it(rec.mask); it; ++it, ++vi) {
        seg.Write(rec.seq, kTailMetaColumns + static_cast<uint32_t>(*it),
                  rec.values[vi]);
      }
      seg.Write(rec.seq, kTailIndirection, rec.backptr);
      seg.Write(rec.seq, kTailBaseRid, rec.base_slot);
      seg.Write(rec.seq, kTailSchemaEncoding, rec.schema_encoding);

      // Outcome: commit time, aborted stamp, or (crash before the
      // outcome record) aborted stamp as well.
      Value start;
      auto it = commits.find(rec.txn_id);
      if (it != commits.end()) {
        start = it->second;
      } else if (rec.start_raw != 0 && !IsTxnId(rec.start_raw)) {
        // Pre-image snapshot record carrying an old commit time.
        start = rec.start_raw;
      } else {
        start = kAbortedStamp;
      }
      // Snapshot records of committed transactions carry the *old*
      // version's start time, not the commit time.
      if (IsSnapshotRecord(rec.schema_encoding) && rec.start_raw != 0 &&
          !IsTxnId(rec.start_raw)) {
        start = rec.start_raw;
      }
      seg.StartTimeSlot(rec.seq)->store(start, std::memory_order_release);
    }
  }

  // --- step 3: resolve outstanding transaction outcomes -------------------
  // Checkpoint-captured records of transactions that were still active
  // at capture time carry raw txn ids; their commit/abort records have
  // LSNs beyond the watermark, so the maps above hold the verdict.
  uint64_t nranges = num_ranges();
  for (uint64_t id = 0; id < nranges; ++id) {
    Range* r = GetRange(id);
    if (r == nullptr) continue;
    uint32_t boundary = r->historic_boundary.load(std::memory_order_acquire);
    uint32_t last = r->updates.LastSeq();
    for (uint32_t seq = std::max(boundary, 1u); seq <= last; ++seq) {
      std::atomic<Value>* sref = r->updates.StartTimeSlot(seq);
      Value raw = sref->load(std::memory_order_acquire);
      if (IsTxnId(raw)) {
        auto it = commits.find(raw);
        sref->store(it != commits.end() ? it->second : kAbortedStamp,
                    std::memory_order_release);
      }
    }
    uint32_t occupied = r->occupied.load(std::memory_order_acquire);
    uint32_t based = r->based.load(std::memory_order_acquire);
    for (uint32_t slot = based; slot < occupied; ++slot) {
      std::atomic<Value>* sref = r->inserts.StartTimeSlot(slot + 1);
      Value raw = sref->load(std::memory_order_acquire);
      if (IsTxnId(raw)) {
        auto it = commits.find(raw);
        sref->store(it != commits.end() ? it->second : kAbortedStamp,
                    std::memory_order_release);
      }
    }
  }

  // --- step 4: rebuild indexes + Indirection (recovery option 2) ----------
  for (uint64_t id = 0; id < nranges; ++id) {
    Range* r = GetRange(id);
    if (r == nullptr) continue;
    uint32_t occupied = r->occupied.load(std::memory_order_acquire);
    uint32_t based = r->based.load(std::memory_order_acquire);
    // The index rebuild only needs the key and Start Time columns —
    // pin exactly those two per range (demand-loading them at most
    // once); every other lazily mapped column segment stays cold, so
    // restart cost for based data is O(hot set), not O(table).
    BaseSegment* start_seg =
        r->base[schema_.num_columns() + kBaseStartTime].load(
            std::memory_order_acquire);
    BaseSegment* key_seg = r->base[0].load(std::memory_order_acquire);
    PageHandle start_page =
        start_seg != nullptr ? start_seg->Pin() : PageHandle();
    PageHandle key_page = key_seg != nullptr ? key_seg->Pin() : PageHandle();
    for (uint32_t slot = 0; slot < occupied; ++slot) {
      Value start =
          (slot < based && start_seg != nullptr && slot < start_seg->num_slots)
              ? start_page.Get(slot)
              : r->inserts.Read(slot + 1, kTailStartTime);
      if (start == kNull || IsAbortedStamp(start) || IsTxnId(start)) continue;
      if (start > max_time) max_time = start;
      Value key = (key_seg != nullptr && slot < key_seg->num_slots)
                      ? key_page.Get(slot)
                      : r->inserts.Read(slot + 1, kTailMetaColumns + 0);
      primary_.Insert(key, id * config_.range_size + slot);
    }
    uint32_t boundary = r->historic_boundary.load(std::memory_order_acquire);
    uint32_t last = r->updates.LastSeq();
    for (uint32_t seq = std::max(boundary, 1u); seq <= last; ++seq) {
      Value raw = r->updates.Read(seq, kTailStartTime);
      if (raw == kNull || IsAbortedStamp(raw) || IsTxnId(raw)) continue;
      if (raw > max_time) max_time = raw;
      uint32_t slot =
          static_cast<uint32_t>(r->updates.Read(seq, kTailBaseRid));
      if (slot >= config_.range_size) continue;
      Value enc = r->updates.Read(seq, kTailSchemaEncoding);
      if (seq > IndirSeq(r->indirection[slot].load(std::memory_order_relaxed))) {
        r->indirection[slot].store(seq, std::memory_order_release);
      }
      r->ever_updated[slot].fetch_or(SchemaColumns(enc),
                                     std::memory_order_relaxed);
    }
    HistoricStore* hist = r->historic.load(std::memory_order_acquire);
    if (hist != nullptr) {
      for (uint32_t slot : hist->Slots()) {
        if (slot >= config_.range_size) continue;
        for (const HistoricStore::Version& v : hist->VersionsOf(slot)) {
          if (v.start_time > max_time) max_time = v.start_time;
          if (v.seq >
              IndirSeq(r->indirection[slot].load(std::memory_order_relaxed))) {
            r->indirection[slot].store(v.seq, std::memory_order_release);
          }
          r->ever_updated[slot].fetch_or(SchemaColumns(v.schema_encoding),
                                         std::memory_order_relaxed);
        }
      }
    }
  }

  // Resume the clock beyond every replayed commit, including no-op
  // commits that left no tail records.
  for (const auto& [txn, ct] : commits) {
    (void)txn;
    if (ct > max_time) max_time = ct;
  }
  txn_manager_->clock().AdvanceTo(max_time + 1);
  return Status::OK();
}

Status Table::RecoverDurable(
    const std::string& checkpoint_file, uint64_t log_watermark,
    uint64_t checkpoint_checksum,
    const std::unordered_map<TxnId, Timestamp>* db_commits,
    const std::vector<std::string>* log_paths, Timestamp commit_horizon) {
  // Replay must not race our own appender; close first.
  if (log_ != nullptr) log_->Close();

  if (!checkpoint_file.empty()) {
    LSTORE_RETURN_IF_ERROR(
        CheckpointIO::LoadTable(this, checkpoint_file, checkpoint_checksum));
  }
  LSTORE_RETURN_IF_ERROR(
      ReplayAndRebuild(log_watermark, db_commits, log_paths, commit_horizon));

  // Resume logging (append mode).
  if (config_.enable_logging && !config_.log_path.empty()) {
    log_ = std::make_unique<RedoLog>();
    log_->set_sync_counter(config_.sync_counter);
    LSTORE_RETURN_IF_ERROR(log_->Open(config_.log_path, /*truncate=*/false));
  }
  return Status::OK();
}

Status Table::RecoverFromLog() {
  if (config_.log_path.empty()) {
    return Status::InvalidArgument("no log path configured");
  }
  return RecoverDurable(/*checkpoint_file=*/"", /*log_watermark=*/0);
}

}  // namespace lstore
