// CheckpointManager: lineage-consistent snapshots, the durable
// manifest/catalog, redo-log truncation, and the optional background
// checkpoint trigger.
//
// A checkpoint of a database directory proceeds as:
//   1. quiesce through the database commit log: inside the
//      group-commit window (so no commit is half-way between its
//      table-log flushes and its commit-log flush), fsync every
//      table's redo log and record its last LSN as the table's
//      watermark, then fsync the commit log and record its position,
//   2. capture each table's state and write ckpt_<id>_<table>.ckpt
//      files (fsynced, checksummed) — any record the capture misses
//      has an LSN beyond its watermark and is replayed at recovery,
//   3. atomically publish MANIFEST via temp file + rename,
//   4. truncate each redo log to its watermark, then drop the commit
//      log's covered prefix (records whose participants all sit at or
//      below their watermarks; crash between 3 and 4 merely leaves
//      extra log records whose replay is idempotent),
//   5. delete the previous checkpoint's files.
//
// The catalog (schema + config per table) is maintained separately by
// Database::CreateTable/DropTable, so tables created after the last
// checkpoint still recover from their logs alone.

#ifndef LSTORE_CHECKPOINT_CHECKPOINT_MANAGER_H_
#define LSTORE_CHECKPOINT_CHECKPOINT_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/health.h"

namespace lstore {

class Database;

/// One table's entry in the checkpoint manifest.
struct ManifestEntry {
  std::string table;
  std::string file;            ///< checkpoint file name, relative to dir
  uint64_t file_checksum = 0;  ///< fnv1a64 of the checkpoint file
  uint64_t log_watermark = 0;  ///< redo LSNs <= this are covered
  std::vector<ColumnId> secondary_columns;
};

struct Manifest {
  uint64_t checkpoint_id = 0;
  /// Archive watermark: a strict upper bound on every commit time the
  /// checkpoint's files can contain (a SnapshotNow taken after the
  /// capture completed; 0 = pre-archive manifest). RestoreToPoint may
  /// start from this checkpoint for any point T with
  /// capture_time <= T + 1 — everything stamped in it then lies at or
  /// before T, and the stitched log replay supplies the rest.
  Timestamp capture_time = 0;
  /// Archive watermark: commit-log LSNs at or below this are fully
  /// covered by the checkpoint (their participants' outcomes are
  /// stamped in the captured state). Truncation drops them; a restore
  /// starting here needs commit records beyond this mark only.
  uint64_t commit_log_mark = 0;
  std::vector<ManifestEntry> entries;
};

/// One table's entry in the durable catalog.
struct CatalogEntry {
  std::string name;
  std::vector<std::string> columns;
  TableConfig config;  ///< logging fields are re-derived at Open
  std::vector<ColumnId> secondary_columns;  ///< durable secondary indexes
};

/// Manifest / catalog files (temp + atomic rename). A missing file
/// reports *exists = false with an OK status; a malformed one fails
/// with Corruption.
/// Path of the live manifest under a database directory — the single
/// home of the file name, shared by checkpointing, archiving, and
/// restore.
std::string ManifestPath(const std::string& dir);

Status WriteManifest(const std::string& dir, const Manifest& m);
Status ReadManifest(const std::string& dir, Manifest* m, bool* exists);
/// Read a manifest by full path (archived copies under <dir>/archive
/// are plain manifest files named MANIFEST.<id>).
Status ReadManifestFile(const std::string& path, Manifest* m, bool* exists);
Status WriteCatalog(const std::string& dir,
                    const std::vector<CatalogEntry>& entries);
Status ReadCatalog(const std::string& dir, std::vector<CatalogEntry>* entries,
                   bool* exists);

class CheckpointManager {
 public:
  CheckpointManager(Database* db, std::string dir, DurabilityOptions opts);
  ~CheckpointManager();

  /// Take one checkpoint now (synchronous; serialized against the
  /// background trigger).
  Status RunCheckpoint();

  /// Start/stop the background trigger thread (no-op when neither the
  /// interval nor the log-size trigger is configured).
  void Start();
  void Stop();

  /// Seed bookkeeping from the manifest found at Open time.
  void SetRecoveredManifest(const Manifest& m);

  /// Remove `table` from the durable manifest and delete its
  /// checkpoint files. Called on DropTable, and on CreateTable before
  /// reusing a name: a stale entry would otherwise be matched by name
  /// at the next Open and resurrect the dropped table's data (its
  /// watermark also exceeds the fresh log's LSNs, which would mask
  /// every new record).
  Status ForgetTable(const std::string& table);

  uint64_t checkpoints_taken() const;
  Status last_background_status() const;

 private:
  void Loop();
  uint64_t TotalLogBytes() const;

  Database* db_;
  std::string dir_;
  DurabilityOptions opts_;

  /// "checkpointer" heartbeat: busy across each RunCheckpoint, beaten
  /// per captured table and per background poll.
  std::shared_ptr<Heartbeat> hb_;
  std::mutex checkpoint_mu_;  ///< serializes RunCheckpoint
  mutable std::mutex mu_;     ///< guards the fields below
  std::condition_variable cv_;
  std::thread worker_;
  bool running_ = false;
  uint64_t next_checkpoint_id_ = 1;
  std::vector<std::string> previous_files_;
  uint64_t checkpoints_taken_ = 0;
  Status last_background_status_;
};

}  // namespace lstore

#endif  // LSTORE_CHECKPOINT_CHECKPOINT_MANAGER_H_
