// Frame writer/reader and the table checkpoint capture/restore pass.

#include "checkpoint/serde.h"

#include <unistd.h>

#include <cstring>
#include <thread>

#include "common/bitutil.h"
#include "core/historic.h"
#include "core/table.h"
#include "log/redo_log.h"
#include "storage/compression/varint.h"

namespace lstore {

// ---------------------------------------------------------------------------
// FrameWriter
// ---------------------------------------------------------------------------

FrameWriter::~FrameWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FrameWriter::Open(const std::string& path, uint32_t magic) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create file: " + path);
  }
  checksum_ = kFnv1a64Seed;
  std::string header;
  PutVarint64(&header, magic);
  PutVarint64(&header, kCheckpointFormatVersion);
  return WriteFrame(FrameType::kFileHeader, header);
}

Status FrameWriter::WriteRaw(const char* data, size_t n) {
  checksum_ = Fnv1a64(data, n, checksum_);
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("short checkpoint write");
  }
  return Status::OK();
}

Status FrameWriter::WriteFrame(FrameType type, const std::string& payload) {
  if (file_ == nullptr) return Status::IOError("writer not open");
  std::string framed;
  PutVarint64(&framed, payload.size() + 1);
  framed.push_back(static_cast<char>(type));
  framed.append(payload);
  uint32_t crc = Fnv1a32(framed.data() + VarintLength(payload.size() + 1),
                         payload.size() + 1);
  framed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return WriteRaw(framed.data(), framed.size());
}

Status FrameWriter::Finish() {
  if (file_ == nullptr) return Status::IOError("writer not open");
  bool ok = std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) return Status::IOError("cannot sync checkpoint file");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FrameReader
// ---------------------------------------------------------------------------

Status FrameReader::Open(const std::string& path, uint32_t expected_magic) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open file: " + path);
  }
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data_.append(chunk, n);
  }
  std::fclose(f);
  checksum_ = Fnv1a64(data_.data(), data_.size());

  FrameType type;
  std::string_view payload;
  if (!Next(&type, &payload) || type != FrameType::kFileHeader) {
    return Status::Corruption("missing file header: " + path);
  }
  size_t pos = 0;
  uint64_t magic = 0, version = 0;
  if (!GetU64(payload, &pos, &magic) || !GetU64(payload, &pos, &version) ||
      magic != expected_magic) {
    return Status::Corruption("bad magic: " + path);
  }
  if (version > kCheckpointFormatVersion) {
    return Status::Corruption("unsupported format version: " + path);
  }
  return Status::OK();
}

bool FrameReader::Next(FrameType* type, std::string_view* payload) {
  if (!status_.ok() || pos_ >= data_.size()) return false;
  size_t pos = pos_;
  uint64_t len;
  if (!GetVarint64(data_.data(), data_.size(), &pos, &len) || len == 0) {
    status_ = Status::Corruption("torn checkpoint frame");
    return false;
  }
  size_t remain = data_.size() - pos;
  if (remain < sizeof(uint32_t) || len > remain - sizeof(uint32_t)) {
    status_ = Status::Corruption("torn checkpoint frame");
    return false;
  }
  const char* frame = data_.data() + pos;
  uint32_t stored;
  std::memcpy(&stored, data_.data() + pos + len, sizeof(stored));
  if (Fnv1a32(frame, len) != stored) {
    status_ = Status::Corruption("checkpoint frame checksum mismatch");
    return false;
  }
  *type = static_cast<FrameType>(frame[0]);
  *payload = std::string_view(frame + 1, len - 1);
  pos_ = pos + len + sizeof(uint32_t);
  return true;
}

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

void PutString(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s);
}

bool GetString(std::string_view in, size_t* pos, std::string* s) {
  uint64_t len;
  if (!GetVarint64(in.data(), in.size(), pos, &len)) return false;
  if (len > in.size() - *pos) return false;  // overflow-safe bound
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

bool GetU64(std::string_view in, size_t* pos, uint64_t* v) {
  return GetVarint64(in.data(), in.size(), pos, v);
}

// ---------------------------------------------------------------------------
// CheckpointIO — capture
// ---------------------------------------------------------------------------

namespace {

/// Resolve the raw Start Time of one tail record for the snapshot.
/// Returns a commit time, the aborted stamp, a still-active txn id
/// (outcome lies beyond the log watermark), or kNull for a record the
/// writer has not published yet. kNull is safe to omit: writers
/// publish the Start Time BEFORE appending to the redo log, so an
/// unpublished record's log append (if it ever happens) necessarily
/// has an LSN beyond the watermark taken before this capture, and the
/// retained log tail replays it.
Value ResolveStartForCapture(TransactionManager* tm,
                             std::atomic<Value>* sref) {
  Value raw = sref->load(std::memory_order_acquire);
  while (IsTxnId(raw)) {
    TransactionManager::StateView view = tm->GetState(raw);
    if (!view.found) {
      // Entry retired: the outcome is being stamped into the slot.
      Value reread = sref->load(std::memory_order_acquire);
      if (reread == raw) {
        std::this_thread::yield();
        continue;
      }
      raw = reread;
      continue;
    }
    switch (view.state) {
      case TxnState::kCommitted:
        return view.commit;
      case TxnState::kAborted:
        return kAbortedStamp;
      case TxnState::kPreCommit:
        // Its commit record may already precede the watermark; wait
        // for the (short) validation window instead of guessing.
        std::this_thread::yield();
        continue;
      case TxnState::kActive:
        // Keep the txn id: a later commit/abort record necessarily has
        // an LSN beyond the watermark and resolves it during replay.
        return raw;
    }
  }
  return raw;
}

}  // namespace

Status CheckpointIO::WriteTable(Table& t, const std::string& path,
                                uint64_t* file_checksum) {
  FrameWriter w;
  LSTORE_RETURN_IF_ERROR(w.Open(path, kCheckpointMagic));

  // Keep retired segments and tail pages alive for the whole capture.
  EpochGuard guard(t.epochs_);
  const uint32_t ncols = t.schema_.num_columns();
  const uint32_t nphys = ncols + kBaseMetaColumns;

  {
    std::string p;
    PutString(&p, t.name_);
    PutVarint64(&p, ncols);
    for (ColumnId c = 0; c < ncols; ++c) PutString(&p, t.schema_.name(c));
    PutVarint64(&p, t.config_.range_size);
    PutVarint64(&p, t.next_row_.load(std::memory_order_acquire));
    PutVarint64(&p, t.num_ranges());
    LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kTableHeader, p));
  }

  uint64_t nranges = t.num_ranges();
  uint64_t ranges_written = 0;
  for (uint64_t id = 0; id < nranges; ++id) {
    Table::Range* r = t.GetRange(id);
    if (r == nullptr) continue;
    // Stable merge lineage: base segments, TPS, the based prefix and
    // the historic boundary only move under this latch (merge,
    // insert-merge, and historic compression all take it).
    SpinGuard g(r->merge_latch);
    const uint32_t occupied = r->occupied.load(std::memory_order_acquire);
    const uint32_t based = r->based.load(std::memory_order_acquire);
    const uint32_t tps = r->merged_tps.load(std::memory_order_acquire);
    const uint32_t boundary =
        r->historic_boundary.load(std::memory_order_acquire);
    const uint32_t last = r->updates.LastSeq();

    {
      std::string p;
      PutVarint64(&p, id);
      PutVarint64(&p, occupied);
      PutVarint64(&p, based);
      PutVarint64(&p, tps);
      PutVarint64(&p, boundary);
      PutVarint64(&p, last);
      LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kRangeState, p));
    }

    // Consolidated base segments (read-optimized columns + lineage).
    // A segment already written through to the table's durable store
    // is checkpointed by reference — no payload I/O, and a cold
    // (evicted) segment is never faulted in just to checkpoint it.
    // SyncSegmentStore() runs before the manifest is published, so
    // every referenced byte range is durable first.
    for (uint32_t pc = 0; pc < nphys; ++pc) {
      BaseSegment* seg = r->base[pc].load(std::memory_order_acquire);
      if (seg == nullptr) continue;
      const SegmentPage* page = seg->page.get();
      if (page != nullptr && page->evictable() && page->store()->durable()) {
        std::string p;
        PutVarint64(&p, id);
        PutVarint64(&p, pc);
        PutVarint64(&p, seg->tps);
        PutVarint64(&p, seg->num_slots);
        PutVarint64(&p, page->swap_offset());
        PutVarint64(&p, page->swap_length());
        PutVarint64(&p, page->swap_checksum());
        PutVarint64(&p, static_cast<uint64_t>(page->swap_format()));
        PutVarint64(&p, page->swap_value_width());
        LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kBaseSegmentRef, p));
        continue;
      }
      PageHandle h = seg->Pin();
      std::string p;
      PutVarint64(&p, id);
      PutVarint64(&p, pc);
      PutVarint64(&p, seg->tps);
      PutVarint64(&p, seg->num_slots);
      for (uint32_t i = 0; i < seg->num_slots; ++i) {
        PutVarint64(&p, h.Get(i));
      }
      LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kBaseSegment, p));
    }

    // Update-range tail records at or beyond the historic boundary
    // (older versions live in the historic store, serialized below).
    {
      std::string body;
      uint64_t count = 0;
      for (uint32_t seq = boundary > 0 ? boundary : 1; seq <= last; ++seq) {
        Value start =
            ResolveStartForCapture(t.txn_manager_, r->updates.StartTimeSlot(seq));
        if (start == kNull) continue;  // reserved, never published
        Value enc = r->updates.Read(seq, kTailSchemaEncoding);
        PutVarint64(&body, seq);
        PutVarint64(&body, start);
        PutVarint64(&body, r->updates.Read(seq, kTailIndirection));
        PutVarint64(&body, r->updates.Read(seq, kTailBaseRid));
        PutVarint64(&body, enc);
        for (BitIter it(SchemaColumns(enc)); it; ++it) {
          PutVarint64(&body, r->updates.Read(
                                 seq, kTailMetaColumns +
                                          static_cast<uint32_t>(*it)));
        }
        ++count;
      }
      std::string p;
      PutVarint64(&p, id);
      PutVarint64(&p, count);
      p.append(body);
      LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kUpdateRecords, p));
    }

    // Table-level tail pages of the not-yet-based suffix (Section 3.2);
    // the based prefix lives in the base segments above.
    {
      std::string p;
      PutVarint64(&p, id);
      PutVarint64(&p, based);
      PutVarint64(&p, occupied > based ? occupied - based : 0);
      for (uint32_t slot = based; slot < occupied; ++slot) {
        Value start = ResolveStartForCapture(
            t.txn_manager_, r->inserts.StartTimeSlot(slot + 1));
        PutVarint64(&p, start);
        for (ColumnId c = 0; c < ncols; ++c) {
          PutVarint64(&p, r->inserts.Read(slot + 1, kTailMetaColumns + c));
        }
      }
      LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kInsertRecords, p));
    }

    // Historic store (Section 4.3): versions below the boundary.
    HistoricStore* hist = r->historic.load(std::memory_order_acquire);
    if (hist != nullptr) {
      std::string p;
      PutVarint64(&p, id);
      hist->EncodeTo(&p);
      LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kHistoric, p));
    }
    ++ranges_written;
  }

  {
    std::string p;
    PutVarint64(&p, ranges_written);
    LSTORE_RETURN_IF_ERROR(w.WriteFrame(FrameType::kTableFooter, p));
  }
  LSTORE_RETURN_IF_ERROR(w.Finish());
  if (file_checksum != nullptr) *file_checksum = w.file_checksum();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CheckpointIO — restore
// ---------------------------------------------------------------------------

Status CheckpointIO::LoadTable(Table* t, const std::string& path,
                               uint64_t expected_checksum) {
  FrameReader reader;
  LSTORE_RETURN_IF_ERROR(reader.Open(path, kCheckpointMagic));
  if (expected_checksum != 0 && reader.file_checksum() != expected_checksum) {
    return Status::Corruption("checkpoint file checksum mismatch: " + path);
  }

  const uint32_t ncols = t->schema_.num_columns();
  const uint32_t nphys = ncols + kBaseMetaColumns;
  bool header_seen = false, footer_seen = false;
  uint64_t ranges_seen = 0;

  FrameType type;
  std::string_view p;
  while (reader.Next(&type, &p)) {
    size_t pos = 0;
    switch (type) {
      case FrameType::kTableHeader: {
        std::string name;
        uint64_t file_ncols, range_size, next_row, nranges;
        if (!GetString(p, &pos, &name) || !GetU64(p, &pos, &file_ncols)) {
          return Status::Corruption("bad table header");
        }
        for (uint64_t c = 0; c < file_ncols; ++c) {
          std::string col;
          if (!GetString(p, &pos, &col)) {
            return Status::Corruption("bad table header");
          }
        }
        if (!GetU64(p, &pos, &range_size) || !GetU64(p, &pos, &next_row) ||
            !GetU64(p, &pos, &nranges)) {
          return Status::Corruption("bad table header");
        }
        if (file_ncols != ncols) {
          return Status::Corruption("checkpoint schema arity mismatch");
        }
        if (range_size != t->config_.range_size) {
          return Status::Corruption("checkpoint range_size mismatch");
        }
        t->next_row_.store(next_row, std::memory_order_release);
        header_seen = true;
        break;
      }
      case FrameType::kRangeState: {
        uint64_t id, occupied, based, tps, boundary, last;
        if (!GetU64(p, &pos, &id) || !GetU64(p, &pos, &occupied) ||
            !GetU64(p, &pos, &based) || !GetU64(p, &pos, &tps) ||
            !GetU64(p, &pos, &boundary) || !GetU64(p, &pos, &last)) {
          return Status::Corruption("bad range state");
        }
        Table::Range* r = t->EnsureRange(id);
        r->occupied.store(static_cast<uint32_t>(occupied),
                          std::memory_order_release);
        r->based.store(static_cast<uint32_t>(based),
                       std::memory_order_release);
        r->merged_tps.store(static_cast<uint32_t>(tps),
                            std::memory_order_release);
        r->historic_boundary.store(static_cast<uint32_t>(boundary),
                                   std::memory_order_release);
        r->updates.AdvanceSeq(static_cast<uint32_t>(last));
        ++ranges_seen;
        break;
      }
      case FrameType::kBaseSegment: {
        uint64_t id, pc, tps, num_slots;
        if (!GetU64(p, &pos, &id) || !GetU64(p, &pos, &pc) ||
            !GetU64(p, &pos, &tps) || !GetU64(p, &pos, &num_slots)) {
          return Status::Corruption("bad base segment");
        }
        if (pc >= nphys) return Status::Corruption("segment column overflow");
        std::vector<Value> vals(num_slots);
        for (uint64_t i = 0; i < num_slots; ++i) {
          if (!GetU64(p, &pos, &vals[i])) {
            return Status::Corruption("bad base segment values");
          }
        }
        auto* seg = new BaseSegment();
        seg->tps = static_cast<uint32_t>(tps);
        seg->num_slots = static_cast<uint32_t>(num_slots);
        seg->page = t->MakeSegmentPage(std::move(vals));
        Table::Range* r = t->EnsureRange(id);
        BaseSegment* old = r->base[pc].exchange(seg, std::memory_order_acq_rel);
        delete old;
        break;
      }
      case FrameType::kBaseSegmentRef: {
        // Lazy restore: map the segment onto its durable store bytes
        // without reading them — recovery cost for based data becomes
        // O(hot set), not O(table). Bounds are validated eagerly so a
        // truncated store fails recovery with a clean error instead of
        // a demand-load fault later.
        uint64_t id, pc, tps, num_slots, offset, length, crc;
        if (!GetU64(p, &pos, &id) || !GetU64(p, &pos, &pc) ||
            !GetU64(p, &pos, &tps) || !GetU64(p, &pos, &num_slots) ||
            !GetU64(p, &pos, &offset) || !GetU64(p, &pos, &length) ||
            !GetU64(p, &pos, &crc)) {
          return Status::Corruption("bad base segment ref");
        }
        // Payload format + value width (absent in pre-fixed-width
        // checkpoints = varint).
        uint64_t format = 0, width = 0;
        if (pos < p.size() &&
            (!GetU64(p, &pos, &format) || !GetU64(p, &pos, &width) ||
             format > static_cast<uint64_t>(SwapFormat::kFixed))) {
          return Status::Corruption("bad base segment ref format");
        }
        if (pc >= nphys) return Status::Corruption("segment column overflow");
        if (t->segment_store_ == nullptr ||
            !t->segment_store_->Contains(offset, length)) {
          return Status::Corruption(
              "checkpoint references missing segment store bytes: " + path);
        }
        if (t->config_.verify_segment_refs) {
          // Opt-in eager integrity check: read the range back and
          // compare checksums so store corruption surfaces as a clean
          // recovery error (the segment still restores cold below).
          std::string bytes;
          Status vs = t->segment_store_->ReadAt(offset, length, &bytes);
          if (!vs.ok() ||
              Fnv1a32(bytes.data(), bytes.size()) !=
                  static_cast<uint32_t>(crc)) {
            return Status::Corruption(
                "checkpoint segment reference failed verification: " + path);
          }
        }
        auto* seg = new BaseSegment();
        seg->tps = static_cast<uint32_t>(tps);
        seg->num_slots = static_cast<uint32_t>(num_slots);
        seg->page = t->MakeColdSegmentPage(static_cast<uint32_t>(num_slots),
                                           offset, length,
                                           static_cast<uint32_t>(crc),
                                           static_cast<SwapFormat>(format),
                                           static_cast<uint32_t>(width));
        Table::Range* r = t->EnsureRange(id);
        BaseSegment* old = r->base[pc].exchange(seg, std::memory_order_acq_rel);
        delete old;
        break;
      }
      case FrameType::kUpdateRecords: {
        uint64_t id, count;
        if (!GetU64(p, &pos, &id) || !GetU64(p, &pos, &count)) {
          return Status::Corruption("bad update records");
        }
        Table::Range* r = t->EnsureRange(id);
        for (uint64_t i = 0; i < count; ++i) {
          uint64_t seq, start, backptr, base_rid, enc;
          if (!GetU64(p, &pos, &seq) || !GetU64(p, &pos, &start) ||
              !GetU64(p, &pos, &backptr) || !GetU64(p, &pos, &base_rid) ||
              !GetU64(p, &pos, &enc)) {
            return Status::Corruption("bad update record");
          }
          uint32_t s = static_cast<uint32_t>(seq);
          r->updates.AdvanceSeq(s);
          r->updates.Write(s, kTailIndirection, backptr);
          r->updates.Write(s, kTailBaseRid, base_rid);
          r->updates.Write(s, kTailSchemaEncoding, enc);
          for (BitIter it(SchemaColumns(enc)); it; ++it) {
            uint64_t v;
            if (!GetU64(p, &pos, &v)) {
              return Status::Corruption("bad update record values");
            }
            r->updates.Write(s, kTailMetaColumns + static_cast<uint32_t>(*it),
                             v);
          }
          r->updates.StartTimeSlot(s)->store(start, std::memory_order_release);
        }
        break;
      }
      case FrameType::kInsertRecords: {
        uint64_t id, first_slot, count;
        if (!GetU64(p, &pos, &id) || !GetU64(p, &pos, &first_slot) ||
            !GetU64(p, &pos, &count)) {
          return Status::Corruption("bad insert records");
        }
        Table::Range* r = t->EnsureRange(id);
        for (uint64_t i = 0; i < count; ++i) {
          uint32_t slot = static_cast<uint32_t>(first_slot + i);
          uint32_t seq = slot + 1;
          uint64_t start;
          if (!GetU64(p, &pos, &start)) {
            return Status::Corruption("bad insert record");
          }
          r->inserts.AdvanceSeq(seq);
          for (ColumnId c = 0; c < ncols; ++c) {
            uint64_t v;
            if (!GetU64(p, &pos, &v)) {
              return Status::Corruption("bad insert record values");
            }
            r->inserts.Write(seq, kTailMetaColumns + c, v);
          }
          r->inserts.Write(seq, kTailIndirection, 0);
          r->inserts.Write(seq, kTailSchemaEncoding, 0);
          r->inserts.Write(seq, kTailBaseRid, slot);
          r->inserts.StartTimeSlot(seq)->store(start,
                                               std::memory_order_release);
        }
        break;
      }
      case FrameType::kHistoric: {
        uint64_t id;
        if (!GetU64(p, &pos, &id)) return Status::Corruption("bad historic");
        HistoricStore* hist =
            HistoricStore::DecodeFrom(p.data() + pos, p.size() - pos);
        if (hist == nullptr) {
          return Status::Corruption("bad historic store encoding");
        }
        Table::Range* r = t->EnsureRange(id);
        HistoricStore* old =
            r->historic.exchange(hist, std::memory_order_acq_rel);
        delete old;
        break;
      }
      case FrameType::kTableFooter: {
        uint64_t count;
        if (!GetU64(p, &pos, &count)) return Status::Corruption("bad footer");
        if (count != ranges_seen) {
          return Status::Corruption("checkpoint truncated: range count");
        }
        footer_seen = true;
        break;
      }
      default:
        break;  // forward compatibility: ignore unknown frames
    }
  }
  LSTORE_RETURN_IF_ERROR(reader.status());
  if (!header_seen || !footer_seen) {
    return Status::Corruption("checkpoint missing header or footer");
  }
  return Status::OK();
}

}  // namespace lstore
