// Binary serialization layer of the durability subsystem.
//
// Checkpoint files, the manifest, and the catalog all share one frame
// format, mirroring the redo log (Section 5.1.3):
//
//   [payload_len varint][type byte + payload][fnv1a32 over payload]
//
// so a torn or bit-flipped frame is detected exactly like a torn log
// record. In addition the writer folds every byte it emits into a
// running fnv1a64 whole-file checksum that the checkpoint manifest
// stores next to the file name — a flipped byte anywhere in a
// checkpointed page fails recovery with a clean Corruption error
// instead of resurrecting wrong data.
//
// CheckpointIO understands the Table internals (it is a friend): it
// captures each update range at a stable merge lineage (under the
// range's merge latch, pinned by an epoch guard) and restores the
// captured state into a freshly constructed table.

#ifndef LSTORE_CHECKPOINT_SERDE_H_
#define LSTORE_CHECKPOINT_SERDE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace lstore {

class Table;

/// Frame types of a checkpoint / manifest / catalog file.
enum class FrameType : uint8_t {
  kFileHeader = 1,     ///< magic + format version
  kTableHeader = 2,    ///< table name, schema, shape
  kRangeState = 3,     ///< per-range counters and lineage watermarks
  kBaseSegment = 4,    ///< one consolidated column of one range
  kUpdateRecords = 5,  ///< tail records of one range's update pages
  kInsertRecords = 6,  ///< table-level tail pages beyond the based prefix
  kHistoric = 7,       ///< compressed historic store of one range
  kTableFooter = 8,    ///< range count (completeness check)
  kManifestEntry = 9,  ///< one table's checkpoint reference
  kCatalogEntry = 10,  ///< one table's schema + config
  kManifestHeader = 11,
  kCatalogHeader = 12,
  /// One consolidated column stored by reference into the table's
  /// segment store ({offset, length, checksum} instead of inline
  /// values): written when the buffer pool already wrote the segment
  /// through, so the checkpoint is pre-paid and recovery maps the
  /// segment lazily instead of loading it.
  kBaseSegmentRef = 13,
};

/// Magics carried in the kFileHeader frame.
inline constexpr uint32_t kCheckpointMagic = 0x4b43534c;  // "LSCK"
inline constexpr uint32_t kManifestMagic = 0x464d534c;    // "LSMF"
inline constexpr uint32_t kCatalogMagic = 0x4754534c;     // "LSTG"
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// Frame-oriented writer with a running whole-file checksum. Finish()
/// fsyncs; callers that need atomic replacement write to a temp path
/// and rename after Finish() succeeds.
class FrameWriter {
 public:
  ~FrameWriter();
  Status Open(const std::string& path, uint32_t magic);
  Status WriteFrame(FrameType type, const std::string& payload);
  Status Finish();
  uint64_t file_checksum() const { return checksum_; }

 private:
  Status WriteRaw(const char* data, size_t n);
  std::FILE* file_ = nullptr;
  uint64_t checksum_;
};

/// Reads a frame file fully, verifying per-frame checksums. The
/// whole-file checksum is available immediately after Open.
class FrameReader {
 public:
  Status Open(const std::string& path, uint32_t expected_magic);
  /// Next frame; false at clean end-of-file. A malformed frame turns
  /// status() into Corruption and stops iteration.
  bool Next(FrameType* type, std::string_view* payload);
  Status status() const { return status_; }
  uint64_t file_checksum() const { return checksum_; }

 private:
  std::string data_;
  size_t pos_ = 0;
  uint64_t checksum_ = 0;
  Status status_;
};

// --- payload primitives ----------------------------------------------------

void PutString(std::string* out, std::string_view s);
bool GetString(std::string_view in, size_t* pos, std::string* s);
bool GetU64(std::string_view in, size_t* pos, uint64_t* v);

// --- table checkpoint I/O --------------------------------------------------

class CheckpointIO {
 public:
  /// Serialize the table's full durable state to `path`. Captures each
  /// range under its merge latch (stable lineage: base segments, TPS,
  /// and historic boundary move only under that latch) while holding
  /// an epoch pin so retired segments stay alive. `file_checksum`
  /// receives the fnv1a64 of the written file for the manifest.
  static Status WriteTable(Table& table, const std::string& path,
                           uint64_t* file_checksum);

  /// Restore `path` into a freshly constructed, empty table. Indexes
  /// and the Indirection column are NOT restored here — recovery
  /// rebuilds them from Base RID backpointers (recovery option 2).
  /// A nonzero `expected_checksum` (from the manifest) is compared
  /// against the file's fnv1a64; mismatch fails with Corruption.
  static Status LoadTable(Table* table, const std::string& path,
                          uint64_t expected_checksum = 0);
};

}  // namespace lstore

#endif  // LSTORE_CHECKPOINT_SERDE_H_
